//! Per-session measurement reports.
//!
//! The paper's QoS metric is the inter-frame delay, "defined as the
//! interval between the processing time of two consecutive frames in a
//! video stream", collected "on the server side, e.g. the processing time
//! is when the video frame is first handled" (Fig 5), with GOP-level
//! aggregation to smooth intrinsic VBR variance (Table 2). A
//! [`SessionReport`] records both the server-side processing instants and
//! the client-side delivery instants of every frame.

use quasaq_sim::{OnlineStats, SimDuration, SimTime};

/// Measurement of one delivered frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Display-order index in the source trace.
    pub display_index: u64,
    /// GOP number.
    pub gop: u64,
    /// When the frame's transmission was due.
    pub due: SimTime,
    /// Server-side processing completion ("when the video frame is first
    /// handled"), `None` while pending.
    pub processed: Option<SimTime>,
    /// Client-side delivery (transfer completion), `None` while pending.
    pub delivered: Option<SimTime>,
}

/// All measurements of one streaming session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    frames: Vec<FrameRecord>,
    start: SimTime,
    playback: SimDuration,
    finish: Option<SimTime>,
    interrupted: Option<SimTime>,
    renegotiations: Vec<SimTime>,
}

impl SessionReport {
    /// Creates a report for a session of `n` scheduled frames.
    pub(crate) fn new(start: SimTime, playback: SimDuration) -> Self {
        SessionReport {
            frames: Vec::new(),
            start,
            playback,
            finish: None,
            interrupted: None,
            renegotiations: Vec::new(),
        }
    }

    pub(crate) fn push_frame(&mut self, display_index: u64, gop: u64, due: SimTime) -> usize {
        self.frames.push(FrameRecord { display_index, gop, due, processed: None, delivered: None });
        self.frames.len() - 1
    }

    pub(crate) fn mark_processed(&mut self, idx: usize, at: SimTime) {
        self.frames[idx].processed = Some(at);
    }

    pub(crate) fn mark_delivered(&mut self, idx: usize, at: SimTime) {
        self.frames[idx].delivered = Some(at);
    }

    pub(crate) fn mark_finished(&mut self, at: SimTime) {
        self.finish = Some(at);
    }

    pub(crate) fn mark_interrupted(&mut self, at: SimTime) {
        self.interrupted = Some(at);
    }

    pub(crate) fn mark_renegotiated(&mut self, at: SimTime) {
        self.renegotiations.push(at);
    }

    /// Session start time.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Source playback duration.
    pub fn playback(&self) -> SimDuration {
        self.playback
    }

    /// Completion time (last frame delivered), `None` while streaming.
    pub fn finish(&self) -> Option<SimTime> {
        self.finish
    }

    /// True when every frame has been delivered.
    pub fn is_complete(&self) -> bool {
        self.finish.is_some()
    }

    /// When the session was cut short by a server failure, `None` for
    /// healthy sessions. An interrupted session never completes on its
    /// original server; delivered frames up to the interruption keep their
    /// measurements.
    pub fn interrupted_at(&self) -> Option<SimTime> {
        self.interrupted
    }

    /// Instants at which the session's delivery rate was renegotiated
    /// (QoP downshifts and restorations), in order. Empty for sessions
    /// the adaptation loop never touched.
    pub fn renegotiations(&self) -> &[SimTime] {
        &self.renegotiations
    }

    /// Per-frame records in schedule order.
    pub fn frames(&self) -> &[FrameRecord] {
        &self.frames
    }

    /// Server-side processing instants of frames processed so far, in
    /// processing order.
    pub fn processing_times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self.frames.iter().filter_map(|f| f.processed).collect();
        times.sort_unstable();
        times
    }

    /// Server-side inter-frame delays in milliseconds (the Fig 5 series).
    pub fn inter_frame_delays_ms(&self) -> Vec<f64> {
        Self::deltas_ms(&self.processing_times())
    }

    /// Client-side inter-frame delays in milliseconds.
    pub fn client_inter_frame_delays_ms(&self) -> Vec<f64> {
        let mut times: Vec<SimTime> = self.frames.iter().filter_map(|f| f.delivered).collect();
        times.sort_unstable();
        Self::deltas_ms(&times)
    }

    /// Inter-GOP delays in milliseconds: intervals between the processing
    /// of each GOP's first processed frame (Table 2's smoothing level).
    pub fn inter_gop_delays_ms(&self) -> Vec<f64> {
        let mut firsts: Vec<(u64, SimTime)> = Vec::new();
        for f in &self.frames {
            let Some(t) = f.processed else { continue };
            match firsts.iter_mut().find(|(g, _)| *g == f.gop) {
                Some((_, at)) => {
                    if t < *at {
                        *at = t;
                    }
                }
                None => firsts.push((f.gop, t)),
            }
        }
        firsts.sort_unstable_by_key(|&(g, _)| g);
        let times: Vec<SimTime> = firsts.into_iter().map(|(_, t)| t).collect();
        Self::deltas_ms(&times)
    }

    fn deltas_ms(times: &[SimTime]) -> Vec<f64> {
        times.windows(2).map(|w| (w[1] - w[0]).as_millis_f64()).collect()
    }

    /// Mean/S.D. of server-side inter-frame delays.
    pub fn frame_delay_stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for d in self.inter_frame_delays_ms() {
            s.push(d);
        }
        s
    }

    /// Mean/S.D. of inter-GOP delays.
    pub fn gop_delay_stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for d in self.inter_gop_delays_ms() {
            s.push(d);
        }
        s
    }

    /// Worst lateness of any processed frame relative to its due time.
    pub fn max_lateness(&self) -> SimDuration {
        self.frames
            .iter()
            .filter_map(|f| f.processed.map(|p| p.duration_since(f.due)))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn delays_from_processing_times() {
        let mut r = SessionReport::new(SimTime::ZERO, SimDuration::from_secs(1));
        for (i, t) in [(0u64, 0u64), (1, 42), (2, 84), (3, 125)] {
            let idx = r.push_frame(i, i / 2, ms(t));
            r.mark_processed(idx, ms(t + 1));
        }
        let d = r.inter_frame_delays_ms();
        assert_eq!(d, vec![42.0, 42.0, 41.0]);
        let stats = r.frame_delay_stats();
        assert_eq!(stats.count(), 3);
        assert!((stats.mean() - 125.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn gop_delays_use_first_frame_of_each_gop() {
        let mut r = SessionReport::new(SimTime::ZERO, SimDuration::from_secs(1));
        // GOP 0: frames at 1, 10; GOP 1: frames at 500, 520.
        for (i, g, t) in [(0u64, 0u64, 1u64), (1, 0, 10), (2, 1, 500), (3, 1, 520)] {
            let idx = r.push_frame(i, g, ms(t));
            r.mark_processed(idx, ms(t));
        }
        assert_eq!(r.inter_gop_delays_ms(), vec![499.0]);
    }

    #[test]
    fn unprocessed_frames_are_skipped() {
        let mut r = SessionReport::new(SimTime::ZERO, SimDuration::from_secs(1));
        let a = r.push_frame(0, 0, ms(0));
        let _b = r.push_frame(1, 0, ms(42));
        r.mark_processed(a, ms(1));
        assert!(r.inter_frame_delays_ms().is_empty());
        assert!(!r.is_complete());
    }

    #[test]
    fn lateness_measures_worst_case() {
        let mut r = SessionReport::new(SimTime::ZERO, SimDuration::from_secs(1));
        let a = r.push_frame(0, 0, ms(10));
        let b = r.push_frame(1, 0, ms(52));
        r.mark_processed(a, ms(12));
        r.mark_processed(b, ms(152));
        assert_eq!(r.max_lateness(), SimDuration::from_millis(100));
    }

    #[test]
    fn client_delays_separate_from_server() {
        let mut r = SessionReport::new(SimTime::ZERO, SimDuration::from_secs(1));
        let a = r.push_frame(0, 0, ms(0));
        let b = r.push_frame(1, 0, ms(42));
        r.mark_processed(a, ms(1));
        r.mark_processed(b, ms(43));
        r.mark_delivered(a, ms(5));
        r.mark_delivered(b, ms(95));
        assert_eq!(r.inter_frame_delays_ms(), vec![42.0]);
        assert_eq!(r.client_inter_frame_delays_ms(), vec![90.0]);
        r.mark_finished(ms(95));
        assert_eq!(r.finish(), Some(ms(95)));
    }
}
