//! Property-based tests of the streaming executor's conservation and
//! timeliness invariants.

use proptest::prelude::*;
use quasaq_media::{
    CipherAlgo, DeliveryCostModel, DropStrategy, FrameRate, FrameTrace, GopPattern, TraceParams,
};
use quasaq_sim::{ServerId, SimDuration, SimTime};
use quasaq_stream::{
    CpuPolicy, DispatchConfig, FrameSchedule, NodeConfig, SessionConfig, StreamEngine, Transforms,
};

fn trace(seed: u64, secs: u64, rate: u64) -> FrameTrace {
    FrameTrace::generate(
        seed,
        &TraceParams::with_bitrate(
            FrameRate::NTSC_FILM,
            SimDuration::from_secs(secs),
            GopPattern::mpeg1_n15(),
            rate as f64,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Schedule conservation: the schedule delivers exactly the frames
    /// the transforms keep, with non-decreasing due times and total bytes
    /// matching the per-frame filter applied directly.
    #[test]
    fn schedule_conserves_filtered_frames(
        seed in any::<u64>(),
        drop_idx in 0usize..4,
        burst in any::<bool>(),
    ) {
        let t = trace(seed, 20, 100_000);
        let transforms = Transforms {
            transcode: None,
            drop: DropStrategy::ALL[drop_idx],
            cipher: CipherAlgo::None,
        };
        let dispatch = if burst { DispatchConfig::default() } else { DispatchConfig::uniform() };
        let s = FrameSchedule::build(&t, &transforms, &DeliveryCostModel::default(), &dispatch);

        // Direct filter application.
        let mut filter = transforms.drop_filter();
        let expected: Vec<_> = t
            .frames()
            .iter()
            .filter(|f| filter.admit(f.ftype))
            .collect();
        prop_assert_eq!(s.len(), expected.len());
        prop_assert_eq!(
            s.delivered_bytes(),
            expected.iter().map(|f| f.bytes as u64).sum::<u64>()
        );
        for w in s.frames().windows(2) {
            prop_assert!(w[0].due <= w[1].due);
        }
        // Every delivered display index appears exactly once.
        let mut idx: Vec<u64> = s.frames().iter().map(|f| f.display_index).collect();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), s.len());
    }

    /// Engine conservation: every scheduled frame of every session is
    /// processed exactly once and delivered exactly once, regardless of
    /// the contention mix.
    #[test]
    fn engine_processes_every_frame_once(
        seed in any::<u64>(),
        n_sessions in 1usize..6,
        reserved in any::<bool>(),
    ) {
        let node = if reserved {
            NodeConfig::qos(10_000_000)
        } else {
            NodeConfig::vdbms(10_000_000)
        };
        let mut engine = StreamEngine::new([(ServerId(0), node)]);
        let mut ids = Vec::new();
        for i in 0..n_sessions {
            let s = FrameSchedule::build(
                &trace(seed ^ i as u64, 10, 100_000),
                &Transforms::none(),
                &DeliveryCostModel::default(),
                &DispatchConfig::default(),
            );
            let n = s.len();
            let cpu = if reserved {
                CpuPolicy::Reserved {
                    share: (s.mean_cpu_share() * 1.3).min(0.3),
                    period: SimDuration::from_millis(625),
                }
            } else {
                CpuPolicy::BestEffort
            };
            let id = engine
                .add_session(
                    SimTime::ZERO,
                    SessionConfig {
                        server: ServerId(0),
                        schedule: s,
                        cpu,
                        link_rate_bps: Some(130_000),
                    },
                )
                .unwrap();
            ids.push((id, n));
        }
        prop_assert!(engine.run_to_completion(SimTime::from_secs(600)));
        for (id, n) in ids {
            let report = engine.report(id);
            prop_assert!(report.is_complete());
            prop_assert_eq!(report.frames().len(), n);
            for f in report.frames() {
                prop_assert!(f.processed.is_some());
                prop_assert!(f.delivered.is_some());
                // Causality: due <= processed <= delivered.
                prop_assert!(f.processed.unwrap() >= f.due);
                prop_assert!(f.delivered.unwrap() >= f.processed.unwrap());
            }
        }
        prop_assert_eq!(engine.active_sessions(), 0);
    }

    /// Reserved sessions are isolated: adding best-effort competitors
    /// never changes a reserved session's processing times.
    #[test]
    fn reservation_isolation(seed in any::<u64>(), hogs in 0usize..8) {
        let build = |n_hogs: usize| {
            let mut engine = StreamEngine::new([(ServerId(0), NodeConfig::qos(10_000_000))]);
            let s = FrameSchedule::build(
                &trace(seed, 10, 193_000),
                &Transforms::none(),
                &DeliveryCostModel::default(),
                &DispatchConfig::default(),
            );
            let monitored = engine
                .add_session(
                    SimTime::ZERO,
                    SessionConfig {
                        server: ServerId(0),
                        schedule: s.clone(),
                        cpu: CpuPolicy::Reserved {
                            share: (s.mean_cpu_share() * 1.3).min(0.3),
                            period: SimDuration::from_millis(625),
                        },
                        link_rate_bps: Some(250_000),
                    },
                )
                .unwrap();
            for i in 0..n_hogs {
                let hs = FrameSchedule::build(
                    &trace(seed ^ (0x9000 + i as u64), 10, 193_000),
                    &Transforms::none(),
                    &DeliveryCostModel::default(),
                    &DispatchConfig::default(),
                );
                engine
                    .add_session(
                        SimTime::ZERO,
                        SessionConfig {
                            server: ServerId(0),
                            schedule: hs,
                            cpu: CpuPolicy::BestEffort,
                            link_rate_bps: Some(250_000),
                        },
                    )
                    .unwrap();
            }
            engine.run_until(SimTime::from_secs(60));
            engine.report(monitored).processing_times()
        };
        let alone = build(0);
        let contended = build(hogs);
        prop_assert_eq!(alone, contended);
    }
}
