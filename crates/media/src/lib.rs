//! # quasaq-media — media substrate for the QuaSAQ reproduction
//!
//! Models everything the QoS-aware query processor needs to know about
//! video objects, replacing the paper's real MPEG-1 clips and external
//! tools (VideoMach for offline replication, `transcode` for online
//! conversion) with deterministic synthetic equivalents:
//!
//! * [`video`] — identifiers, formats, resolutions, frame rates, color
//!   depths.
//! * [`gop`] — MPEG Group-of-Pictures structure (I/P/B frames) whose size
//!   ratios produce the intrinsic VBR jitter the paper observes.
//! * [`trace`] — seeded synthetic VBR frame-size traces.
//! * [`quality`] — application-QoS specifications ([`QualitySpec`]) and
//!   query-side acceptance ranges ([`QosRange`]).
//! * [`transcode`] — online transcoding feasibility, output-size and
//!   CPU-cost model.
//! * [`drop`] — MPEG-1 frame-dropping strategies (no drop / half B /
//!   all B / all B and P, per Fig 2).
//! * [`encrypt`] — encryption algorithm cost/strength model.
//! * [`library`] — catalog generation matching the paper's database (15
//!   videos, 30 s–18 min, 3–4 replica qualities sized for T1/DSL/modem).

pub mod costmodel;
pub mod drop;
pub mod encrypt;
pub mod gop;
pub mod library;
pub mod quality;
pub mod trace;
pub mod transcode;
pub mod video;

pub use costmodel::DeliveryCostModel;
pub use drop::{DropFilter, DropStrategy};
pub use encrypt::CipherAlgo;
pub use gop::{FrameType, GopPattern};
pub use library::{
    quality_ladder, Library, LibraryConfig, QualityTier, ReplicaQuality, VideoEntry, VideoMeta,
    FEATURE_DIMS,
};
pub use quality::{QosRange, QualitySpec};
pub use trace::{Frame, FrameTrace, TraceParams};
pub use transcode::{Transcode, TranscodeCost, TranscodeError};
pub use video::{ColorDepth, FrameRate, Resolution, VideoFormat, VideoId};
