//! Server-side delivery cost model.
//!
//! The paper's QoS sampler measures, offline, "the resource consumption in
//! the delivery of individual media objects"; those QoS profiles are "the
//! basis for cost estimation of QoS-aware query execution plans". In the
//! simulated testbed the measurement is replaced by this analytic model,
//! calibrated so a 2.4 GHz Pentium-4-class server saturates at a few dozen
//! concurrent full-quality streams — matching the contention levels of the
//! paper's Fig 5.
//!
//! The same model instance is shared by the QoS sampler (static profiles),
//! the streaming executor (actual per-frame work), and the plan cost
//! evaluator, so estimates and "reality" agree by construction, exactly as
//! the paper's profiles agree with its servers.

use crate::drop::DropStrategy;
use crate::encrypt::CipherAlgo;
use crate::gop::GopPattern;
use crate::transcode::{Transcode, TranscodeCost};
use quasaq_sim::SimDuration;

/// Cost coefficients for media delivery on one server.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryCostModel {
    /// CPU microseconds per delivered byte (read, packetize, RTP-stamp,
    /// syscall). 0.18 us/B ≈ 5.5 MB/s of streaming throughput per CPU.
    pub stream_cpu_us_per_byte: f64,
    /// Fixed CPU microseconds per frame (timer, header parse,
    /// synchronization).
    pub stream_cpu_us_per_frame: f64,
    /// Seconds of stream data buffered in server memory per session.
    pub buffer_seconds: f64,
    /// Transcoder cost coefficients.
    pub transcode: TranscodeCost,
    /// Headroom multiplier applied when turning measured shares into
    /// reservations (DSRT reservations need slack for VBR peaks).
    pub reservation_headroom: f64,
}

impl Default for DeliveryCostModel {
    fn default() -> Self {
        DeliveryCostModel {
            stream_cpu_us_per_byte: 0.18,
            stream_cpu_us_per_frame: 350.0,
            buffer_seconds: 2.0,
            transcode: TranscodeCost::default(),
            reservation_headroom: 1.3,
        }
    }
}

impl DeliveryCostModel {
    /// CPU work to stream one frame of `bytes` (no transforms).
    pub fn stream_cpu_per_frame(&self, bytes: u32) -> SimDuration {
        let us = self.stream_cpu_us_per_frame + self.stream_cpu_us_per_byte * bytes as f64;
        SimDuration::from_micros(us.round() as u64)
    }

    /// Mean CPU share (fraction of one processor) to stream at
    /// `rate_bps` bytes/second and `fps` frames/second.
    pub fn stream_cpu_share(&self, rate_bps: f64, fps: f64) -> f64 {
        (self.stream_cpu_us_per_byte * rate_bps + self.stream_cpu_us_per_frame * fps) / 1e6
    }

    /// Mean CPU share of an online transcode running at `fps` kept frames
    /// per second.
    pub fn transcode_cpu_share(&self, t: &Transcode, fps: f64) -> f64 {
        t.cpu_per_frame(&self.transcode).as_micros() as f64 * fps / 1e6
    }

    /// Mean CPU share of encrypting a stream of `rate_bps`.
    pub fn encrypt_cpu_share(&self, algo: CipherAlgo, rate_bps: f64) -> f64 {
        algo.cpu_share_for_rate(rate_bps)
    }

    /// Session buffer memory for a stream of `rate_bps`.
    pub fn buffer_bytes(&self, rate_bps: f64) -> f64 {
        self.buffer_seconds * rate_bps
    }

    /// End-to-end per-session CPU share on the *serving* server for a
    /// delivery pipeline: stream the stored replica, optionally transcode,
    /// apply frame dropping, optionally encrypt the delivered bytes.
    ///
    /// `stored_rate_bps`/`stored_fps` describe the on-disk replica;
    /// the transforms determine the delivered rate.
    #[allow(clippy::too_many_arguments)]
    pub fn session_cpu_share(
        &self,
        stored_rate_bps: f64,
        stored_fps: f64,
        gop: &GopPattern,
        transcode: Option<&Transcode>,
        drop: DropStrategy,
        cipher: CipherAlgo,
    ) -> f64 {
        let (delivered_rate, delivered_fps) =
            self.delivered_rate(stored_rate_bps, stored_fps, gop, transcode, drop);
        let mut share = self.stream_cpu_share(delivered_rate, delivered_fps);
        if let Some(t) = transcode {
            if !t.is_identity() {
                share += self.transcode_cpu_share(t, stored_fps * t.frame_keep_fraction());
            }
        }
        share += self.encrypt_cpu_share(cipher, delivered_rate);
        share
    }

    /// The delivered (bytes/second, frames/second) after transcode and
    /// frame dropping.
    pub fn delivered_rate(
        &self,
        stored_rate_bps: f64,
        stored_fps: f64,
        gop: &GopPattern,
        transcode: Option<&Transcode>,
        drop: DropStrategy,
    ) -> (f64, f64) {
        let mut rate = stored_rate_bps;
        let mut fps = stored_fps;
        if let Some(t) = transcode {
            rate *= t.stream_size_factor();
            fps *= t.frame_keep_fraction();
        }
        rate *= drop.byte_keep_fraction(gop);
        fps *= drop.frame_keep_fraction(gop);
        (rate, fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualitySpec;
    use crate::video::{ColorDepth, FrameRate, Resolution, VideoFormat};

    fn model() -> DeliveryCostModel {
        DeliveryCostModel::default()
    }

    #[test]
    fn per_frame_cost_includes_fixed_and_variable() {
        let m = model();
        let small = m.stream_cpu_per_frame(0);
        let big = m.stream_cpu_per_frame(10_000);
        assert_eq!(small, SimDuration::from_micros(350));
        assert!(big > small);
        assert_eq!(big.as_micros(), 350 + 1800);
    }

    #[test]
    fn full_quality_stream_saturates_at_tens_of_sessions() {
        // Sanity: ~300 KB/s full-quality stream at 23.97 fps should cost a
        // few percent of a CPU, so a server saturates in the dozens —
        // matching the paper's "high contention" regime.
        let m = model();
        let share = m.stream_cpu_share(300_000.0, 23.97);
        assert!((0.02..0.10).contains(&share), "share {share}");
    }

    #[test]
    fn buffer_scales_with_rate() {
        let m = model();
        assert_eq!(m.buffer_bytes(48_000.0), 96_000.0);
    }

    #[test]
    fn delivered_rate_applies_transforms() {
        let m = model();
        let gop = GopPattern::mpeg1_classic();
        let full = QualitySpec::new(
            Resolution::FULL,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg2,
        );
        let cif = QualitySpec::new(
            Resolution::CIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        );
        let t = Transcode::plan(full, cif).unwrap();
        let (rate, fps) = m.delivered_rate(300_000.0, 23.97, &gop, Some(&t), DropStrategy::AllB);
        assert!(rate < 300_000.0 * t.stream_size_factor() + 1.0);
        assert!(fps < 23.97 * 0.4);
        let (plain_rate, plain_fps) =
            m.delivered_rate(300_000.0, 23.97, &gop, None, DropStrategy::None);
        assert_eq!(plain_rate, 300_000.0);
        assert_eq!(plain_fps, 23.97);
    }

    #[test]
    fn session_share_orders_by_pipeline_weight() {
        let m = model();
        let gop = GopPattern::mpeg1_classic();
        let plain =
            m.session_cpu_share(300_000.0, 23.97, &gop, None, DropStrategy::None, CipherAlgo::None);
        let encrypted = m.session_cpu_share(
            300_000.0,
            23.97,
            &gop,
            None,
            DropStrategy::None,
            CipherAlgo::Block,
        );
        assert!(encrypted > plain);
        // Dropping B frames reduces delivered bytes and so the share.
        let dropped =
            m.session_cpu_share(300_000.0, 23.97, &gop, None, DropStrategy::AllB, CipherAlgo::None);
        assert!(dropped < plain);
    }

    #[test]
    fn transcoding_is_the_dominant_cpu_cost() {
        let m = model();
        let gop = GopPattern::mpeg1_classic();
        let full = QualitySpec::new(
            Resolution::FULL,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg2,
        );
        let cif = QualitySpec::new(
            Resolution::CIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        );
        let t = Transcode::plan(full, cif).unwrap();
        let with_tc = m.session_cpu_share(
            300_000.0,
            23.97,
            &gop,
            Some(&t),
            DropStrategy::None,
            CipherAlgo::None,
        );
        let without =
            m.session_cpu_share(48_000.0, 23.97, &gop, None, DropStrategy::None, CipherAlgo::None);
        // Serving a pre-transcoded replica is far cheaper than transcoding
        // on the fly — the rationale for QoS-aware offline replication.
        assert!(with_tc > 3.0 * without, "with {with_tc} vs without {without}");
    }
}
