//! Application-level QoS: quality specifications and query-side ranges.
//!
//! In the paper's layering (Table 1), *application QoS* covers frame width
//! and height, color resolution, and frame rate; user-level QoP maps onto
//! ranges of these values ("we achieve some flexibility by allowing one QoP
//! mapped to a range of QoS values"). [`QualitySpec`] describes what a
//! physical replica delivers; [`QosRange`] describes what a QoS-aware query
//! will accept.

use crate::video::{ColorDepth, FrameRate, Resolution, VideoFormat};
use std::fmt;

/// The application-QoS description of one encoded video object — the
/// paper's Quality Metadata: "resolution, color depth, frame rate, and file
/// format".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QualitySpec {
    /// Spatial resolution.
    pub resolution: Resolution,
    /// Color depth.
    pub color: ColorDepth,
    /// Temporal resolution.
    pub frame_rate: FrameRate,
    /// Container/codec format.
    pub format: VideoFormat,
}

impl QualitySpec {
    /// Creates a spec.
    pub fn new(
        resolution: Resolution,
        color: ColorDepth,
        frame_rate: FrameRate,
        format: VideoFormat,
    ) -> Self {
        QualitySpec { resolution, color, frame_rate, format }
    }

    /// True when this spec is at least as good as `other` on every ordered
    /// dimension (format is categorical and ignored). Used by the static
    /// plan rules: "we cannot retrieve a video with resolution lower than
    /// that required by the user. Similarly, it makes no sense to transcode
    /// from low resolution to high resolution."
    pub fn dominates(&self, other: &QualitySpec) -> bool {
        self.resolution.covers(other.resolution)
            && self.color >= other.color
            && self.frame_rate >= other.frame_rate
    }

    /// A scalar "richness" proxy: bits of raw video per second. Useful for
    /// ordering replicas of the same content by fidelity.
    pub fn raw_bits_per_second(&self) -> f64 {
        self.resolution.pixels() as f64 * self.color.bits() as f64 * self.frame_rate.fps()
    }
}

impl fmt::Display for QualitySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.resolution, self.color, self.frame_rate, self.format)
    }
}

/// An inclusive range of acceptable application QoS attached to a query.
///
/// Hashable so admission layers can key memoization (e.g. the plan cache)
/// on the exact requested ladder rung.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QosRange {
    /// Smallest acceptable resolution.
    pub min_resolution: Resolution,
    /// Largest useful resolution (e.g. the client display size).
    pub max_resolution: Resolution,
    /// Smallest acceptable color depth.
    pub min_color: ColorDepth,
    /// Smallest acceptable frame rate.
    pub min_frame_rate: FrameRate,
    /// Largest useful frame rate.
    pub max_frame_rate: FrameRate,
    /// Acceptable formats; `None` accepts any.
    pub formats: Option<Vec<VideoFormat>>,
}

impl QosRange {
    /// A range that accepts anything — the "don't care" query.
    pub fn any() -> Self {
        QosRange {
            min_resolution: Resolution::new(1, 1),
            max_resolution: Resolution::new(u32::MAX, u32::MAX),
            min_color: ColorDepth::from_bits(1),
            min_frame_rate: FrameRate::from_millifps(1),
            max_frame_rate: FrameRate::from_millifps(u32::MAX),
            formats: None,
        }
    }

    /// An exact-point range accepting only `spec`'s quality values (any
    /// format).
    pub fn exactly(spec: &QualitySpec) -> Self {
        QosRange {
            min_resolution: spec.resolution,
            max_resolution: spec.resolution,
            min_color: spec.color,
            min_frame_rate: spec.frame_rate,
            max_frame_rate: spec.frame_rate,
            formats: None,
        }
    }

    /// Internal consistency: min bounds must not exceed max bounds.
    pub fn is_valid(&self) -> bool {
        self.max_resolution.covers(self.min_resolution)
            && self.min_frame_rate <= self.max_frame_rate
            && self.formats.as_ref().is_none_or(|f| !f.is_empty())
    }

    /// True when a replica of quality `spec` can be delivered *as is* and
    /// satisfy this range.
    pub fn accepts(&self, spec: &QualitySpec) -> bool {
        spec.resolution.covers(self.min_resolution)
            && self.max_resolution.covers(spec.resolution)
            && spec.color >= self.min_color
            && spec.frame_rate >= self.min_frame_rate
            && spec.frame_rate <= self.max_frame_rate
            && self.accepts_format(spec.format)
    }

    /// True when the format is acceptable.
    pub fn accepts_format(&self, format: VideoFormat) -> bool {
        self.formats.as_ref().is_none_or(|f| f.contains(&format))
    }

    /// True when a replica of quality `spec` could satisfy this range after
    /// *downgrading* transforms (transcoding down, frame dropping). Quality
    /// can only be reduced, never improved, so the source must dominate the
    /// range's floor.
    pub fn reachable_from(&self, spec: &QualitySpec) -> bool {
        spec.resolution.covers(self.min_resolution)
            && spec.color >= self.min_color
            && spec.frame_rate >= self.min_frame_rate
    }

    /// The cheapest in-range target quality reachable from `spec` by
    /// downgrades: the floor of the range, clipped to the source where the
    /// source sits inside the range. Returns `None` when unreachable.
    pub fn cheapest_target(&self, spec: &QualitySpec, format: VideoFormat) -> Option<QualitySpec> {
        if !self.reachable_from(spec) || !self.accepts_format(format) {
            return None;
        }
        // The floor is reachable from any dominating source, and it is the
        // cheapest point of the range on every dimension.
        let resolution = self.min_resolution;
        let color = self.min_color.min(spec.color);
        let frame_rate = self.min_frame_rate.min(spec.frame_rate);
        Some(QualitySpec { resolution, color, frame_rate, format })
    }
}

impl fmt::Display for QosRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "res[{}..{}] color>={} rate[{}..{}]",
            self.min_resolution,
            self.max_resolution,
            self.min_color,
            self.min_frame_rate,
            self.max_frame_rate
        )?;
        if let Some(fmts) = &self.formats {
            write!(f, " formats{fmts:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> QualitySpec {
        QualitySpec::new(
            Resolution::FULL,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg2,
        )
    }

    fn cif_spec() -> QualitySpec {
        QualitySpec::new(
            Resolution::CIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        )
    }

    fn vcd_range() -> QosRange {
        // "a user input of 'VCD-like spatial resolution' can be interpreted
        // as a resolution range of 320x240 - 352x288 pixels".
        QosRange {
            min_resolution: Resolution::QVGA,
            max_resolution: Resolution::CIF,
            min_color: ColorDepth::BITS_12,
            min_frame_rate: FrameRate::from_fps(20.0),
            max_frame_rate: FrameRate::NTSC,
            formats: None,
        }
    }

    #[test]
    fn dominance() {
        assert!(full_spec().dominates(&cif_spec()));
        assert!(!cif_spec().dominates(&full_spec()));
        // Reflexive.
        assert!(full_spec().dominates(&full_spec()));
    }

    #[test]
    fn accepts_in_range_spec() {
        let r = vcd_range();
        assert!(r.accepts(&cif_spec()));
        // Full resolution exceeds the VCD ceiling.
        assert!(!r.accepts(&full_spec()));
    }

    #[test]
    fn accepts_checks_every_dimension() {
        let r = vcd_range();
        let mut low_color = cif_spec();
        low_color.color = ColorDepth::PALETTE;
        assert!(!r.accepts(&low_color));
        let mut slow = cif_spec();
        slow.frame_rate = FrameRate::LOW;
        assert!(!r.accepts(&slow));
    }

    #[test]
    fn format_filtering() {
        let mut r = vcd_range();
        r.formats = Some(vec![VideoFormat::Mpeg1]);
        assert!(r.accepts(&cif_spec()));
        let mut mpeg2 = cif_spec();
        mpeg2.format = VideoFormat::Mpeg2;
        assert!(!r.accepts(&mpeg2));
    }

    #[test]
    fn reachable_only_by_downgrade() {
        let r = vcd_range();
        // The full-quality replica can be transcoded down into range.
        assert!(r.reachable_from(&full_spec()));
        // A QCIF replica cannot be upscaled into range.
        let tiny = QualitySpec::new(
            Resolution::QCIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        );
        assert!(!r.reachable_from(&tiny));
    }

    #[test]
    fn cheapest_target_is_range_floor() {
        let r = vcd_range();
        let target = r.cheapest_target(&full_spec(), VideoFormat::Mpeg1).unwrap();
        assert_eq!(target.resolution, Resolution::QVGA);
        assert_eq!(target.color, ColorDepth::BITS_12);
        assert!((target.frame_rate.fps() - 20.0).abs() < 1e-9);
        assert!(r.accepts(&target));
    }

    #[test]
    fn cheapest_target_unreachable_is_none() {
        let r = vcd_range();
        let tiny = QualitySpec::new(
            Resolution::QCIF,
            ColorDepth::PALETTE,
            FrameRate::LOW,
            VideoFormat::Mpeg1,
        );
        assert_eq!(r.cheapest_target(&tiny, VideoFormat::Mpeg1), None);
    }

    #[test]
    fn any_range_accepts_everything() {
        let r = QosRange::any();
        assert!(r.is_valid());
        assert!(r.accepts(&full_spec()));
        assert!(r.accepts(&cif_spec()));
    }

    #[test]
    fn exact_range_accepts_only_itself() {
        let r = QosRange::exactly(&cif_spec());
        assert!(r.is_valid());
        assert!(r.accepts(&cif_spec()));
        assert!(!r.accepts(&full_spec()));
    }

    #[test]
    fn invalid_range_detected() {
        let mut r = vcd_range();
        r.min_resolution = Resolution::FULL;
        assert!(!r.is_valid());
        let mut r2 = vcd_range();
        r2.formats = Some(vec![]);
        assert!(!r2.is_valid());
    }

    #[test]
    fn raw_bits_order_matches_fidelity() {
        assert!(full_spec().raw_bits_per_second() > cif_spec().raw_bits_per_second());
    }
}
