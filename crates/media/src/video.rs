//! Core video vocabulary: identifiers, formats, resolutions, frame rates.

use quasaq_sim::SimDuration;
use std::fmt;

/// Identifies a *logical* video (the content, independent of any encoding).
/// The paper calls this a logical OID: "these OIDs refer to the video
/// content rather than the entity in storage since multiple copies of the
/// same video exist."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VideoId(pub u32);

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "video#{}", self.0)
    }
}

/// Container/codec format of a physical replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VideoFormat {
    /// MPEG-1 — the paper's streaming format (its frame-dropping strategies
    /// are implemented for MPEG-1 streams).
    Mpeg1,
    /// MPEG-2 — the paper's high-quality archival format (Fig 2 shows
    /// MPEG-2 sources transcoded to MPEG-1).
    Mpeg2,
}

impl VideoFormat {
    /// All supported formats.
    pub const ALL: [VideoFormat; 2] = [VideoFormat::Mpeg1, VideoFormat::Mpeg2];
}

impl fmt::Display for VideoFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoFormat::Mpeg1 => write!(f, "MPEG1"),
            VideoFormat::Mpeg2 => write!(f, "MPEG2"),
        }
    }
}

/// Spatial resolution in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
}

impl Resolution {
    /// Full NTSC DVD-class resolution (the paper's top replica, Fig 2).
    pub const FULL: Resolution = Resolution::new(720, 480);
    /// VGA-class.
    pub const VGA: Resolution = Resolution::new(640, 480);
    /// CIF / VCD-class ("a resolution range of 320x240 – 352x288 pixels").
    pub const CIF: Resolution = Resolution::new(352, 288);
    /// QVGA.
    pub const QVGA: Resolution = Resolution::new(320, 240);
    /// QCIF — modem-class.
    pub const QCIF: Resolution = Resolution::new(176, 144);

    /// Creates a resolution.
    pub const fn new(width: u32, height: u32) -> Self {
        Resolution { width, height }
    }

    /// Total pixel count.
    pub const fn pixels(self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// True when every dimension is at least as large as `other`'s.
    pub fn covers(self, other: Resolution) -> bool {
        self.width >= other.width && self.height >= other.height
    }
}

impl PartialOrd for Resolution {
    /// Partial order by coverage: `a >= b` iff `a` covers `b` in both
    /// dimensions. Mixed aspect ratios are incomparable.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering::*;
        if self == other {
            Some(Equal)
        } else if self.covers(*other) {
            Some(Greater)
        } else if other.covers(*self) {
            Some(Less)
        } else {
            None
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// Frames per second, stored in milli-fps so 23.97 fps is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameRate {
    millifps: u32,
}

impl FrameRate {
    /// NTSC film rate — the Fig 5 sample video's 23.97 fps.
    pub const NTSC_FILM: FrameRate = FrameRate::from_millifps(23_970);
    /// PAL 25 fps.
    pub const PAL: FrameRate = FrameRate::from_millifps(25_000);
    /// NTSC 29.97 fps.
    pub const NTSC: FrameRate = FrameRate::from_millifps(29_970);
    /// Half film rate, for low-bandwidth replicas.
    pub const LOW: FrameRate = FrameRate::from_millifps(12_000);

    /// Creates a rate from milli-frames-per-second.
    pub const fn from_millifps(millifps: u32) -> Self {
        FrameRate { millifps }
    }

    /// Creates a rate from (possibly fractional) frames per second.
    pub fn from_fps(fps: f64) -> Self {
        assert!(fps > 0.0, "frame rate must be positive");
        FrameRate { millifps: (fps * 1000.0).round() as u32 }
    }

    /// Frames per second as a float.
    pub fn fps(self) -> f64 {
        self.millifps as f64 / 1000.0
    }

    /// Raw milli-fps.
    pub const fn millifps(self) -> u32 {
        self.millifps
    }

    /// The ideal interval between consecutive frames — the paper's
    /// "theoretical inter-frame delay" (1/23.97 = 41.72 ms for the sample
    /// video).
    pub fn frame_interval(self) -> SimDuration {
        assert!(self.millifps > 0, "frame rate must be positive");
        // 1e6 us/s * 1000 mfps scale.
        SimDuration::from_micros(1_000_000_000 / self.millifps as u64)
    }

    /// Number of frames in a clip of the given duration.
    pub fn frames_in(self, duration: SimDuration) -> u64 {
        duration.as_micros() * self.millifps as u64 / 1_000_000_000
    }
}

impl fmt::Display for FrameRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}fps", self.fps())
    }
}

/// Color depth in bits per pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColorDepth {
    bits: u8,
}

impl ColorDepth {
    /// 24-bit true color (the paper's full-quality replicas).
    pub const TRUE_COLOR: ColorDepth = ColorDepth { bits: 24 };
    /// 16-bit high color.
    pub const HIGH_COLOR: ColorDepth = ColorDepth { bits: 16 };
    /// 12-bit color (Fig 2's "640x420, 12bit" replica).
    pub const BITS_12: ColorDepth = ColorDepth { bits: 12 };
    /// 8-bit palettized color.
    pub const PALETTE: ColorDepth = ColorDepth { bits: 8 };

    /// Creates a depth from raw bits (1..=48).
    pub fn from_bits(bits: u8) -> Self {
        assert!((1..=48).contains(&bits), "color depth out of range");
        ColorDepth { bits }
    }

    /// Bits per pixel.
    pub const fn bits(self) -> u8 {
        self.bits
    }
}

impl fmt::Display for ColorDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bit", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_coverage_order() {
        assert!(Resolution::FULL.covers(Resolution::CIF));
        assert!(!Resolution::CIF.covers(Resolution::FULL));
        assert!(Resolution::FULL > Resolution::CIF);
        assert!(Resolution::QCIF < Resolution::QVGA);
        // 352x288 vs 320x240: 352>=320 and 288>=240 -> comparable.
        assert!(Resolution::CIF > Resolution::QVGA);
    }

    #[test]
    fn incomparable_resolutions() {
        let tall = Resolution::new(100, 400);
        let wide = Resolution::new(400, 100);
        assert_eq!(tall.partial_cmp(&wide), None);
        assert!(!tall.covers(wide));
        assert!(!wide.covers(tall));
    }

    #[test]
    fn pixels_product() {
        assert_eq!(Resolution::FULL.pixels(), 720 * 480);
    }

    #[test]
    fn frame_rate_interval_matches_paper() {
        // "the theoretical inter-frame delay for the sample video is
        // 1/23.97 = 41.72ms".
        let interval = FrameRate::NTSC_FILM.frame_interval();
        assert_eq!(interval.as_micros(), 41_718);
        assert!((interval.as_millis_f64() - 41.72).abs() < 0.01);
    }

    #[test]
    fn frames_in_duration() {
        let n = FrameRate::PAL.frames_in(SimDuration::from_secs(10));
        assert_eq!(n, 250);
        let n = FrameRate::NTSC_FILM.frames_in(SimDuration::from_secs(60));
        assert_eq!(n, 1438); // 23.97 * 60 = 1438.2
    }

    #[test]
    fn from_fps_round_trip() {
        let r = FrameRate::from_fps(23.97);
        assert_eq!(r, FrameRate::NTSC_FILM);
        assert!((r.fps() - 23.97).abs() < 1e-9);
    }

    #[test]
    fn color_depth_ordering() {
        assert!(ColorDepth::TRUE_COLOR > ColorDepth::BITS_12);
        assert_eq!(ColorDepth::from_bits(24), ColorDepth::TRUE_COLOR);
    }

    #[test]
    #[should_panic(expected = "color depth out of range")]
    fn zero_color_depth_rejected() {
        let _ = ColorDepth::from_bits(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Resolution::CIF.to_string(), "352x288");
        assert_eq!(ColorDepth::TRUE_COLOR.to_string(), "24bit");
        assert_eq!(VideoFormat::Mpeg1.to_string(), "MPEG1");
        assert_eq!(VideoId(3).to_string(), "video#3");
        assert_eq!(FrameRate::PAL.to_string(), "25.00fps");
    }
}
