//! Frame-dropping strategies for MPEG-1 delivery.
//!
//! The paper implements "various frame dropping strategies for MPEG1
//! videos as part of the Transport API", and Fig 2's activity set A3 lists
//! "No drop", "half B frames", "All B frames", and "All B and P". Dropping
//! B frames is safe (nothing references them); dropping P frames degrades
//! to I-only playback. Dropping reduces both the bandwidth and the
//! effective temporal resolution of the delivered stream.

use crate::gop::{FrameType, GopPattern};
use std::fmt;

/// A runtime frame-dropping strategy (activity set A3 in Fig 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DropStrategy {
    /// Deliver every frame.
    #[default]
    None,
    /// Drop every other B frame.
    HalfB,
    /// Drop all B frames.
    AllB,
    /// Drop all B and P frames (I-only playback).
    AllBP,
}

impl DropStrategy {
    /// All strategies, cheapest-degradation first.
    pub const ALL: [DropStrategy; 4] =
        [DropStrategy::None, DropStrategy::HalfB, DropStrategy::AllB, DropStrategy::AllBP];

    /// Whether frame `index` (with coding type `ftype`) is delivered.
    /// `b_ordinal` disambiguates HalfB: it is the running count of B frames
    /// seen so far (even ordinals are kept).
    pub fn keeps(self, ftype: FrameType, b_ordinal: u64) -> bool {
        match self {
            DropStrategy::None => true,
            DropStrategy::HalfB => ftype != FrameType::B || b_ordinal.is_multiple_of(2),
            DropStrategy::AllB => ftype != FrameType::B,
            DropStrategy::AllBP => ftype == FrameType::I,
        }
    }

    /// Fraction of *frames* kept for a given GOP pattern.
    pub fn frame_keep_fraction(self, gop: &GopPattern) -> f64 {
        let (i, p, b) = gop.type_counts();
        let kept = match self {
            DropStrategy::None => i + p + b,
            DropStrategy::HalfB => i + p + b.div_ceil(2),
            DropStrategy::AllB => i + p,
            DropStrategy::AllBP => i,
        };
        kept as f64 / gop.len() as f64
    }

    /// Fraction of *bytes* kept for a given GOP pattern, using the
    /// pattern's I/P/B size weights.
    pub fn byte_keep_fraction(self, gop: &GopPattern) -> f64 {
        let (i, p, b) = gop.type_counts();
        let wi = gop.size_weight(FrameType::I);
        let wp = gop.size_weight(FrameType::P);
        let wb = gop.size_weight(FrameType::B);
        let total = i as f64 * wi + p as f64 * wp + b as f64 * wb;
        let kept = match self {
            DropStrategy::None => total,
            DropStrategy::HalfB => i as f64 * wi + p as f64 * wp + b.div_ceil(2) as f64 * wb,
            DropStrategy::AllB => i as f64 * wi + p as f64 * wp,
            DropStrategy::AllBP => i as f64 * wi,
        };
        kept / total
    }

    /// Effective delivered frame rate after dropping, given the source
    /// rate in fps.
    pub fn effective_fps(self, source_fps: f64, gop: &GopPattern) -> f64 {
        source_fps * self.frame_keep_fraction(gop)
    }

    /// A relative quality penalty in `[0, 1]` (0 = no degradation), used
    /// by gain/utility functions: temporal resolution loss weighted by how
    /// jerky the result is.
    pub fn quality_penalty(self, gop: &GopPattern) -> f64 {
        1.0 - self.frame_keep_fraction(gop)
    }
}

impl fmt::Display for DropStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropStrategy::None => write!(f, "no-drop"),
            DropStrategy::HalfB => write!(f, "half-B"),
            DropStrategy::AllB => write!(f, "all-B"),
            DropStrategy::AllBP => write!(f, "all-B-and-P"),
        }
    }
}

/// Stateful filter applying a [`DropStrategy`] to a frame sequence,
/// tracking the running B ordinal for `HalfB`.
#[derive(Debug, Clone)]
pub struct DropFilter {
    strategy: DropStrategy,
    b_seen: u64,
}

impl DropFilter {
    /// Creates a filter for `strategy`.
    pub fn new(strategy: DropStrategy) -> Self {
        DropFilter { strategy, b_seen: 0 }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> DropStrategy {
        self.strategy
    }

    /// Consumes the next frame type in stream order and reports whether it
    /// is delivered.
    pub fn admit(&mut self, ftype: FrameType) -> bool {
        let keep = self.strategy.keeps(ftype, self.b_seen);
        if ftype == FrameType::B {
            self.b_seen += 1;
        }
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_keeps_everything() {
        let g = GopPattern::mpeg1_classic();
        assert_eq!(DropStrategy::None.frame_keep_fraction(&g), 1.0);
        assert_eq!(DropStrategy::None.byte_keep_fraction(&g), 1.0);
    }

    #[test]
    fn all_b_keeps_i_and_p() {
        let g = GopPattern::mpeg1_classic(); // 1 I, 3 P, 8 B
        let f = DropStrategy::AllB.frame_keep_fraction(&g);
        assert!((f - 4.0 / 12.0).abs() < 1e-12);
        let mut filter = DropFilter::new(DropStrategy::AllB);
        let kept: Vec<bool> = (0..12).map(|i| filter.admit(g.frame_type(i))).collect();
        assert_eq!(kept.iter().filter(|&&k| k).count(), 4);
    }

    #[test]
    fn all_bp_keeps_only_i() {
        let g = GopPattern::mpeg1_classic();
        let f = DropStrategy::AllBP.frame_keep_fraction(&g);
        assert!((f - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn half_b_keeps_every_other_b() {
        let g = GopPattern::mpeg1_classic();
        let mut filter = DropFilter::new(DropStrategy::HalfB);
        let mut kept_b = 0;
        let mut dropped_b = 0;
        for i in 0..24 {
            let ft = g.frame_type(i);
            let keep = filter.admit(ft);
            if ft == FrameType::B {
                if keep {
                    kept_b += 1;
                } else {
                    dropped_b += 1;
                }
            } else {
                assert!(keep, "non-B frames are never dropped by HalfB");
            }
        }
        assert_eq!(kept_b, 8);
        assert_eq!(dropped_b, 8);
    }

    #[test]
    fn byte_fraction_exceeds_frame_fraction_for_b_drops() {
        // B frames are the smallest, so dropping them saves fewer bytes
        // than frames.
        let g = GopPattern::mpeg1_classic();
        assert!(
            DropStrategy::AllB.byte_keep_fraction(&g) > DropStrategy::AllB.frame_keep_fraction(&g)
        );
    }

    #[test]
    fn strategies_monotonically_cheaper() {
        let g = GopPattern::mpeg1_classic();
        let fracs: Vec<f64> = DropStrategy::ALL.iter().map(|s| s.byte_keep_fraction(&g)).collect();
        for w in fracs.windows(2) {
            assert!(w[0] > w[1], "{fracs:?}");
        }
    }

    #[test]
    fn effective_fps_scales() {
        let g = GopPattern::mpeg1_classic();
        let fps = DropStrategy::AllB.effective_fps(23.97, &g);
        assert!((fps - 23.97 * 4.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn penalty_orders_like_aggressiveness() {
        let g = GopPattern::mpeg1_classic();
        assert_eq!(DropStrategy::None.quality_penalty(&g), 0.0);
        assert!(DropStrategy::AllBP.quality_penalty(&g) > DropStrategy::AllB.quality_penalty(&g));
    }

    #[test]
    fn no_b_pattern_makes_b_strategies_free() {
        let g = GopPattern::no_b_frames();
        assert_eq!(DropStrategy::AllB.frame_keep_fraction(&g), 1.0);
        assert_eq!(DropStrategy::HalfB.byte_keep_fraction(&g), 1.0);
    }
}
