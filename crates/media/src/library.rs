//! Video library generation.
//!
//! The paper's experimental database "contains 15 videos in MPEG-1 format
//! with playback time ranging from 30 seconds to 18 minutes. For each
//! video, three to four copies with different quality are generated" with
//! bitrates chosen so that "the resulting video replicas fit the bandwidth
//! of typical network connections such as T1, DSL, and modems". This
//! module generates an equivalent synthetic catalog: logical videos with
//! content metadata (keywords and a feature vector for similarity search)
//! and a per-video ladder of replica qualities.

use crate::gop::GopPattern;
use crate::quality::QualitySpec;
use crate::trace::TraceParams;
use crate::video::{ColorDepth, FrameRate, Resolution, VideoFormat, VideoId};
use quasaq_sim::{Rng, SimDuration};

/// A named rung of the replica-quality ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityTier {
    /// Human-readable tier name.
    pub name: &'static str,
    /// Application QoS delivered by this tier.
    pub spec: QualitySpec,
    /// Encoded bitrate in bytes/second, sized for a connection class.
    pub rate_bps: u64,
}

/// The standard four-rung ladder used for offline replication, matching
/// the paper's connection classes.
pub fn quality_ladder() -> Vec<QualityTier> {
    vec![
        QualityTier {
            name: "full",
            spec: QualitySpec::new(
                Resolution::FULL,
                ColorDepth::TRUE_COLOR,
                FrameRate::NTSC_FILM,
                VideoFormat::Mpeg2,
            ),
            // DVD-class MPEG-2, ~2.4 Mbps.
            rate_bps: 300_000,
        },
        QualityTier {
            name: "t1",
            spec: QualitySpec::new(
                Resolution::VGA,
                ColorDepth::TRUE_COLOR,
                FrameRate::NTSC_FILM,
                VideoFormat::Mpeg1,
            ),
            // T1 line, 1.544 Mbps.
            rate_bps: 193_000,
        },
        QualityTier {
            name: "dsl",
            spec: QualitySpec::new(
                Resolution::CIF,
                ColorDepth::TRUE_COLOR,
                FrameRate::NTSC_FILM,
                VideoFormat::Mpeg1,
            ),
            // 384 kbps DSL.
            rate_bps: 48_000,
        },
        QualityTier {
            name: "modem",
            spec: QualitySpec::new(
                Resolution::QCIF,
                ColorDepth::BITS_12,
                FrameRate::LOW,
                VideoFormat::Mpeg1,
            ),
            // 56 kbps modem.
            rate_bps: 7_000,
        },
    ]
}

/// Number of dimensions in the content feature vector (stand-in for the
/// paper's visual descriptors: shot detection, frame extraction,
/// segmentation, camera motion).
pub const FEATURE_DIMS: usize = 8;

/// Logical-video metadata: the Content Metadata of the paper's metadata
/// engine.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoMeta {
    /// Logical video id.
    pub id: VideoId,
    /// Display title.
    pub title: String,
    /// Searchable keywords.
    pub keywords: Vec<String>,
    /// A unit-norm visual feature vector for similarity queries.
    pub features: [f32; FEATURE_DIMS],
    /// Playback duration.
    pub duration: SimDuration,
    /// GOP structure shared by all replicas of this video.
    pub gop: GopPattern,
    /// Seed from which all of this video's frame traces derive.
    pub trace_seed: u64,
}

/// One replica quality of a video (the *what*, not the *where*: placement
/// lives in the storage layer).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaQuality {
    /// Tier name ("full", "t1", "dsl", "modem").
    pub tier: &'static str,
    /// Delivered application QoS.
    pub spec: QualitySpec,
    /// Encoded bitrate in bytes/second.
    pub rate_bps: u64,
}

impl ReplicaQuality {
    /// Estimated stored size for a clip of `duration`.
    pub fn estimated_bytes(&self, duration: SimDuration) -> u64 {
        (self.rate_bps as f64 * duration.as_secs_f64()).round() as u64
    }

    /// Trace parameters for simulating this replica of `meta`.
    pub fn trace_params(&self, meta: &VideoMeta) -> TraceParams {
        TraceParams::with_bitrate(
            self.spec.frame_rate,
            meta.duration,
            meta.gop.clone(),
            self.rate_bps as f64,
        )
    }

    /// The deterministic trace seed for this replica of `meta` (every
    /// tier gets its own stream derived from the video's seed).
    pub fn trace_seed(&self, meta: &VideoMeta) -> u64 {
        let tier_tag: u64 =
            self.tier.bytes().fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
        meta.trace_seed ^ tier_tag
    }
}

/// A logical video together with its replica-quality ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoEntry {
    /// Content metadata.
    pub meta: VideoMeta,
    /// Replica qualities, highest fidelity first.
    pub replicas: Vec<ReplicaQuality>,
}

/// Library generation parameters.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// Number of logical videos (the paper uses 15).
    pub num_videos: usize,
    /// Shortest clip (paper: 30 s).
    pub min_duration: SimDuration,
    /// Longest clip (paper: 18 min).
    pub max_duration: SimDuration,
    /// Minimum replicas per video (paper: 3).
    pub min_replicas: usize,
    /// Maximum replicas per video (paper: 4).
    pub max_replicas: usize,
}

impl Default for LibraryConfig {
    fn default() -> Self {
        LibraryConfig {
            num_videos: 15,
            min_duration: SimDuration::from_secs(30),
            max_duration: SimDuration::from_secs(18 * 60),
            min_replicas: 3,
            max_replicas: 4,
        }
    }
}

/// The generated catalog.
#[derive(Debug, Clone)]
pub struct Library {
    entries: Vec<VideoEntry>,
}

const TOPICS: &[&str] = &[
    "surgery",
    "radiology",
    "cardiology",
    "diagnosis",
    "patient",
    "lecture",
    "sunset",
    "news",
    "sports",
    "traffic",
    "interview",
    "nature",
    "city",
    "aerial",
    "lab",
    "microscopy",
];

const ADJECTIVES: &[&str] =
    &["annotated", "archived", "clinical", "raw", "edited", "panoramic", "timelapse", "training"];

fn validate(cfg: &LibraryConfig) {
    assert!(cfg.num_videos > 0, "library must contain videos");
    assert!(cfg.min_duration <= cfg.max_duration, "invalid duration range");
    assert!(
        (1..=quality_ladder().len()).contains(&cfg.min_replicas)
            && cfg.min_replicas <= cfg.max_replicas
            && cfg.max_replicas <= quality_ladder().len(),
        "replica count out of range"
    );
}

/// Generates video `v` of the catalog seeded by `root`. Each video draws
/// from its own forked stream, so any sub-range of the catalog is
/// constructible independently — batched generation of a 10^4-video
/// library concatenates to exactly the all-at-once result.
fn generate_entry(root: &Rng, cfg: &LibraryConfig, ladder: &[QualityTier], v: usize) -> VideoEntry {
    let mut rng = root.fork(v as u64);
    let topic = *rng.choose(TOPICS);
    let adjective = *rng.choose(ADJECTIVES);
    let title = format!("{adjective} {topic} #{v:02}");
    let mut keywords = vec![topic.to_string(), adjective.to_string()];
    // A couple of extra keywords for richer search.
    for _ in 0..rng.range_u64(1, 3) {
        let extra = *rng.choose(TOPICS);
        if !keywords.iter().any(|k| k == extra) {
            keywords.push(extra.to_string());
        }
    }
    let mut features = [0f32; FEATURE_DIMS];
    for f in &mut features {
        *f = rng.range_f64(-1.0, 1.0) as f32;
    }
    let norm: f32 = features.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    for f in &mut features {
        *f /= norm;
    }
    let duration = SimDuration::from_micros(
        rng.range_u64(cfg.min_duration.as_micros(), cfg.max_duration.as_micros()),
    );
    let n_replicas = rng.range_u64(cfg.min_replicas as u64, cfg.max_replicas as u64) as usize;
    // Keep the top rung always (the original), then the next rungs
    // down: 3 replicas = full/t1/dsl, 4 = full/t1/dsl/modem.
    let replicas: Vec<ReplicaQuality> = ladder
        .iter()
        .take(n_replicas)
        .map(|t| ReplicaQuality { tier: t.name, spec: t.spec, rate_bps: t.rate_bps })
        .collect();
    VideoEntry {
        meta: VideoMeta {
            id: VideoId(v as u32),
            title,
            keywords,
            features,
            duration,
            gop: GopPattern::mpeg1_n15(),
            trace_seed: rng.next_u64(),
        },
        replicas,
    }
}

impl Library {
    /// Generates a deterministic catalog.
    pub fn generate(seed: u64, cfg: &LibraryConfig) -> Self {
        Library { entries: Self::generate_batch(seed, cfg, 0..cfg.num_videos) }
    }

    /// Generates one contiguous batch of the catalog that `generate(seed,
    /// cfg)` would produce: entry `v` depends only on `(seed, cfg, v)`, so
    /// large catalogs can be produced piecewise (and the pieces
    /// concatenated with [`Library::from_entries`]) without ever
    /// materialising state for the videos outside the batch.
    pub fn generate_batch(
        seed: u64,
        cfg: &LibraryConfig,
        batch: std::ops::Range<usize>,
    ) -> Vec<VideoEntry> {
        validate(cfg);
        assert!(batch.end <= cfg.num_videos, "batch outside the catalog");
        let root = Rng::new(seed);
        let ladder = quality_ladder();
        batch.map(|v| generate_entry(&root, cfg, &ladder, v)).collect()
    }

    /// Assembles a library from pre-generated entries (typically batches
    /// from [`Library::generate_batch`]). Entries must arrive in id order
    /// with no gaps.
    pub fn from_entries(entries: Vec<VideoEntry>) -> Self {
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.meta.id, VideoId(i as u32), "entries out of order or gapped");
        }
        Library { entries }
    }

    /// All videos.
    pub fn entries(&self) -> &[VideoEntry] {
        &self.entries
    }

    /// Number of logical videos.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty (never for generated libraries).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a video by logical id.
    pub fn get(&self, id: VideoId) -> Option<&VideoEntry> {
        self.entries.iter().find(|e| e.meta.id == id)
    }

    /// Total stored bytes across all replicas (for storage planning).
    pub fn total_replica_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.replicas.iter().map(|r| r.estimated_bytes(e.meta.duration)).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_strictly_ordered() {
        let ladder = quality_ladder();
        assert_eq!(ladder.len(), 4);
        for w in ladder.windows(2) {
            assert!(w[0].rate_bps > w[1].rate_bps);
            assert!(w[0].spec.raw_bits_per_second() > w[1].spec.raw_bits_per_second());
            // Every lower rung is reachable from the one above by
            // downgrade-only transforms.
            assert!(w[0].spec.dominates(&w[1].spec));
        }
    }

    #[test]
    fn generation_matches_paper_shape() {
        let lib = Library::generate(42, &LibraryConfig::default());
        assert_eq!(lib.len(), 15);
        for e in lib.entries() {
            let secs = e.meta.duration.as_secs_f64();
            assert!((30.0..=18.0 * 60.0).contains(&secs), "duration {secs}");
            assert!((3..=4).contains(&e.replicas.len()));
            assert_eq!(e.replicas[0].tier, "full");
            assert!(!e.meta.keywords.is_empty());
        }
    }

    #[test]
    fn deterministic() {
        let a = Library::generate(7, &LibraryConfig::default());
        let b = Library::generate(7, &LibraryConfig::default());
        assert_eq!(a.entries(), b.entries());
        let c = Library::generate(8, &LibraryConfig::default());
        assert_ne!(a.entries(), c.entries());
    }

    #[test]
    fn batched_generation_concatenates_to_the_full_catalog() {
        let cfg = LibraryConfig { num_videos: 30, ..LibraryConfig::default() };
        let whole = Library::generate(5, &cfg);
        let mut pieces = Library::generate_batch(5, &cfg, 0..11);
        pieces.extend(Library::generate_batch(5, &cfg, 11..23));
        pieces.extend(Library::generate_batch(5, &cfg, 23..30));
        let stitched = Library::from_entries(pieces);
        assert_eq!(whole.entries(), stitched.entries());
    }

    #[test]
    #[should_panic(expected = "entries out of order")]
    fn from_entries_rejects_gaps() {
        let cfg = LibraryConfig::default();
        let tail = Library::generate_batch(5, &cfg, 3..5);
        let _ = Library::from_entries(tail);
    }

    #[test]
    fn feature_vectors_unit_norm() {
        let lib = Library::generate(3, &LibraryConfig::default());
        for e in lib.entries() {
            let norm: f32 = e.meta.features.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
        }
    }

    #[test]
    fn lookup_by_id() {
        let lib = Library::generate(5, &LibraryConfig::default());
        let e = lib.get(VideoId(3)).unwrap();
        assert_eq!(e.meta.id, VideoId(3));
        assert!(lib.get(VideoId(999)).is_none());
    }

    #[test]
    fn replica_sizes_scale_with_rate() {
        let lib = Library::generate(1, &LibraryConfig::default());
        let e = &lib.entries()[0];
        let sizes: Vec<u64> =
            e.replicas.iter().map(|r| r.estimated_bytes(e.meta.duration)).collect();
        for w in sizes.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(lib.total_replica_bytes() > 0);
    }

    #[test]
    fn trace_seeds_differ_per_tier() {
        let lib = Library::generate(2, &LibraryConfig::default());
        let e = &lib.entries()[0];
        let seeds: Vec<u64> = e.replicas.iter().map(|r| r.trace_seed(&e.meta)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn trace_params_respect_replica() {
        let lib = Library::generate(2, &LibraryConfig::default());
        let e = &lib.entries()[0];
        let r = &e.replicas[1];
        let p = r.trace_params(&e.meta);
        assert_eq!(p.frame_rate, r.spec.frame_rate);
        assert_eq!(p.duration, e.meta.duration);
        assert!((p.mean_frame_bytes - r.rate_bps as f64 / r.spec.frame_rate.fps()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "replica count out of range")]
    fn bad_replica_config_rejected() {
        let cfg = LibraryConfig { min_replicas: 0, ..LibraryConfig::default() };
        let _ = Library::generate(1, &cfg);
    }
}
