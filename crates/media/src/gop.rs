//! MPEG Group-of-Pictures structure.
//!
//! The paper measures delay variance at both the frame and the GOP level
//! (Table 2): "some variance [is] inevitable in dealing with Variable
//! Bitrate (VBR) media streams such as MPEG video because the frames are of
//! different sizes and coding schemes (e.g. I, B, P frames in a Group of
//! Pictures (GOP) in MPEG). Such intrinsic variance can be smoothed out if
//! we collect data on the GOP level." This module models the I/B/P pattern
//! that produces the intrinsic variance and the frame-dropping strategies'
//! selectivity.

use std::fmt;

/// MPEG frame coding type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Intra-coded: self-contained, largest.
    I,
    /// Predicted from previous I/P frames.
    P,
    /// Bidirectionally predicted: droppable without breaking decode of
    /// other frames, smallest.
    B,
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameType::I => write!(f, "I"),
            FrameType::P => write!(f, "P"),
            FrameType::B => write!(f, "B"),
        }
    }
}

/// A repeating GOP pattern, e.g. `IBBPBBPBBPBB`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GopPattern {
    frames: Vec<FrameType>,
}

impl GopPattern {
    /// The classic MPEG-1 pattern: `IBBPBBPBBPBB` (N = 12, M = 3).
    pub fn mpeg1_classic() -> Self {
        use FrameType::*;
        GopPattern { frames: vec![I, B, B, P, B, B, P, B, B, P, B, B] }
    }

    /// A 15-frame MPEG-1 pattern: `IBBPBBPBBPBBPBB` (N = 15, M = 3).
    /// Table 2's inter-GOP delays near 625 ms at 23.97 fps imply the
    /// paper's sample video used this GOP length (15/23.97 = 625.8 ms).
    pub fn mpeg1_n15() -> Self {
        use FrameType::*;
        GopPattern { frames: vec![I, B, B, P, B, B, P, B, B, P, B, B, P, B, B] }
    }

    /// A short pattern without B frames (`IPPP`), as used by low-latency
    /// encodings.
    pub fn no_b_frames() -> Self {
        use FrameType::*;
        GopPattern { frames: vec![I, P, P, P] }
    }

    /// Builds a pattern from an explicit frame-type sequence.
    ///
    /// # Panics
    /// Panics when empty or when the first frame is not an I frame (every
    /// GOP must open with an anchor).
    pub fn new(frames: Vec<FrameType>) -> Self {
        assert!(!frames.is_empty(), "GOP pattern cannot be empty");
        assert_eq!(frames[0], FrameType::I, "GOP must start with an I frame");
        GopPattern { frames }
    }

    /// Frames per GOP.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Always false (patterns are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The coding type of frame `index` in an infinite repetition of the
    /// pattern.
    pub fn frame_type(&self, index: u64) -> FrameType {
        self.frames[(index % self.frames.len() as u64) as usize]
    }

    /// The position of frame `index` within its GOP.
    pub fn position_in_gop(&self, index: u64) -> usize {
        (index % self.frames.len() as u64) as usize
    }

    /// The GOP number of frame `index`.
    pub fn gop_of(&self, index: u64) -> u64 {
        index / self.frames.len() as u64
    }

    /// Counts of (I, P, B) frames in one pattern repetition.
    pub fn type_counts(&self) -> (usize, usize, usize) {
        let mut i = 0;
        let mut p = 0;
        let mut b = 0;
        for f in &self.frames {
            match f {
                FrameType::I => i += 1,
                FrameType::P => p += 1,
                FrameType::B => b += 1,
            }
        }
        (i, p, b)
    }

    /// Relative size weight of a frame type, normalized so that the mean
    /// weight over one GOP is 1.0. I frames are the largest, B the
    /// smallest; the ratios follow common MPEG-1 measurements
    /// (I : P : B = 5 : 2.5 : 1).
    pub fn size_weight(&self, ftype: FrameType) -> f64 {
        let (i, p, b) = self.type_counts();
        let raw = |t: FrameType| match t {
            FrameType::I => 5.0,
            FrameType::P => 2.5,
            FrameType::B => 1.0,
        };
        let total: f64 = i as f64 * raw(FrameType::I)
            + p as f64 * raw(FrameType::P)
            + b as f64 * raw(FrameType::B);
        let mean = total / self.len() as f64;
        raw(ftype) / mean
    }

    /// The ideal duration of one GOP at `fps` frames/second in
    /// milliseconds. For the Fig 5 sample video (23.97 fps, 12-frame GOP)
    /// this is 12/23.97 = 500.6 ms; Table 2 reports inter-GOP delays near
    /// 625 ms for a 15-frame GOP.
    pub fn gop_millis(&self, fps: f64) -> f64 {
        self.len() as f64 / fps * 1000.0
    }
}

impl fmt::Display for GopPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.frames {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pattern_shape() {
        let g = GopPattern::mpeg1_classic();
        assert_eq!(g.len(), 12);
        assert_eq!(g.to_string(), "IBBPBBPBBPBB");
        assert_eq!(g.type_counts(), (1, 3, 8));
    }

    #[test]
    fn frame_type_repeats() {
        let g = GopPattern::mpeg1_classic();
        assert_eq!(g.frame_type(0), FrameType::I);
        assert_eq!(g.frame_type(12), FrameType::I);
        assert_eq!(g.frame_type(1), FrameType::B);
        assert_eq!(g.frame_type(3), FrameType::P);
        assert_eq!(g.frame_type(15), FrameType::P);
    }

    #[test]
    fn gop_indexing() {
        let g = GopPattern::mpeg1_classic();
        assert_eq!(g.gop_of(0), 0);
        assert_eq!(g.gop_of(11), 0);
        assert_eq!(g.gop_of(12), 1);
        assert_eq!(g.position_in_gop(13), 1);
    }

    #[test]
    fn size_weights_average_to_one() {
        let g = GopPattern::mpeg1_classic();
        let (i, p, b) = g.type_counts();
        let mean = (i as f64 * g.size_weight(FrameType::I)
            + p as f64 * g.size_weight(FrameType::P)
            + b as f64 * g.size_weight(FrameType::B))
            / g.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(g.size_weight(FrameType::I) > g.size_weight(FrameType::P));
        assert!(g.size_weight(FrameType::P) > g.size_weight(FrameType::B));
    }

    #[test]
    fn no_b_pattern() {
        let g = GopPattern::no_b_frames();
        let (_, _, b) = g.type_counts();
        assert_eq!(b, 0);
    }

    #[test]
    fn gop_duration() {
        let g = GopPattern::mpeg1_classic();
        assert!((g.gop_millis(23.97) - 500.6).abs() < 0.1);
    }

    #[test]
    fn n15_pattern_matches_table2_gop_duration() {
        let g = GopPattern::mpeg1_n15();
        assert_eq!(g.len(), 15);
        assert_eq!(g.type_counts(), (1, 4, 10));
        // Table 2 reports inter-GOP means of 622.8-626.2 ms.
        assert!((g.gop_millis(23.97) - 625.78).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "GOP must start with an I frame")]
    fn pattern_must_open_with_i() {
        let _ = GopPattern::new(vec![FrameType::B, FrameType::I]);
    }
}
