//! Online transcoding model.
//!
//! The paper integrates a modified version of the Linux `transcode` tool
//! into its Transport API to convert a stored replica to a target quality
//! on the fly (Fig 2's "Transcoding target" activity set). We model the
//! aspects the query processor cares about: *feasibility* (quality can
//! only be reduced), *output size* (bytes scale with the pixel, color and
//! frame-rate ratios), and *CPU cost* (per-frame work proportional to the
//! pixels decoded and re-encoded).

use crate::quality::QualitySpec;
use quasaq_sim::SimDuration;

/// Why a transcode is not possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranscodeError {
    /// Target resolution exceeds the source ("it makes no sense to
    /// transcode from low resolution to high resolution").
    Upscale,
    /// Target color depth exceeds the source.
    ColorUpscale,
    /// Target frame rate exceeds the source.
    RateUpscale,
}

impl std::fmt::Display for TranscodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranscodeError::Upscale => write!(f, "cannot upscale spatial resolution"),
            TranscodeError::ColorUpscale => write!(f, "cannot increase color depth"),
            TranscodeError::RateUpscale => write!(f, "cannot increase frame rate"),
        }
    }
}

impl std::error::Error for TranscodeError {}

/// A feasible transcode from one quality to another, with its scaling
/// factors precomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transcode {
    source: QualitySpec,
    target: QualitySpec,
    /// Output bytes per input byte.
    size_factor: f64,
    /// Fraction of source frames kept (frame-rate reduction drops frames).
    frame_keep: f64,
}

/// CPU cost coefficients of the transcoder, calibrated so that full-frame
/// MPEG transcoding of a 720x480 frame costs a few milliseconds on the
/// paper's 2.4 GHz Pentium 4 class server.
#[derive(Debug, Clone, Copy)]
pub struct TranscodeCost {
    /// CPU microseconds per source megapixel decoded.
    pub decode_us_per_mpx: f64,
    /// CPU microseconds per target megapixel encoded.
    pub encode_us_per_mpx: f64,
}

impl Default for TranscodeCost {
    fn default() -> Self {
        // Decode ~2 ms and encode ~4 ms per 0.35 Mpx frame.
        TranscodeCost { decode_us_per_mpx: 6_000.0, encode_us_per_mpx: 12_000.0 }
    }
}

impl Transcode {
    /// Plans a transcode, validating that every dimension only goes down.
    pub fn plan(source: QualitySpec, target: QualitySpec) -> Result<Transcode, TranscodeError> {
        if !source.resolution.covers(target.resolution) {
            return Err(TranscodeError::Upscale);
        }
        if target.color > source.color {
            return Err(TranscodeError::ColorUpscale);
        }
        if target.frame_rate > source.frame_rate {
            return Err(TranscodeError::RateUpscale);
        }
        let pixel_ratio = target.resolution.pixels() as f64 / source.resolution.pixels() as f64;
        let color_ratio = target.color.bits() as f64 / source.color.bits() as f64;
        let frame_keep = target.frame_rate.millifps() as f64 / source.frame_rate.millifps() as f64;
        // Compressed size scales roughly linearly in pixels, sub-linearly
        // in color depth (chroma subsampling already discounts color).
        let size_factor = pixel_ratio * color_ratio.sqrt();
        Ok(Transcode { source, target, size_factor, frame_keep })
    }

    /// True when source and target are the same quality (identity — no
    /// transcoder needs to run).
    pub fn is_identity(&self) -> bool {
        self.source == self.target
    }

    /// The source quality.
    pub fn source(&self) -> &QualitySpec {
        &self.source
    }

    /// The target quality.
    pub fn target(&self) -> &QualitySpec {
        &self.target
    }

    /// Output bytes for an input frame of `bytes` (0 when the frame is
    /// dropped by frame-rate reduction — see [`Transcode::keeps_frame`]).
    pub fn output_bytes(&self, bytes: u32) -> u32 {
        ((bytes as f64) * self.size_factor).round().max(1.0) as u32
    }

    /// Whether source frame `index` survives frame-rate reduction.
    /// Frames are kept on an evenly spread lattice so the output cadence
    /// stays regular.
    pub fn keeps_frame(&self, index: u64) -> bool {
        if self.frame_keep >= 1.0 {
            return true;
        }
        // Keep frame i when floor((i+1)*keep) > floor(i*keep).
        let a = ((index + 1) as f64 * self.frame_keep).floor();
        let b = (index as f64 * self.frame_keep).floor();
        a > b
    }

    /// Fraction of frames kept.
    pub fn frame_keep_fraction(&self) -> f64 {
        self.frame_keep
    }

    /// Output bytes per input byte (over a long stream, including dropped
    /// frames).
    pub fn stream_size_factor(&self) -> f64 {
        self.size_factor * self.frame_keep
    }

    /// CPU work to transcode one kept source frame.
    pub fn cpu_per_frame(&self, cost: &TranscodeCost) -> SimDuration {
        if self.is_identity() {
            return SimDuration::ZERO;
        }
        let src_mpx = self.source.resolution.pixels() as f64 / 1e6;
        let dst_mpx = self.target.resolution.pixels() as f64 / 1e6;
        let us = cost.decode_us_per_mpx * src_mpx + cost.encode_us_per_mpx * dst_mpx;
        SimDuration::from_micros(us.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::{ColorDepth, FrameRate, Resolution, VideoFormat};

    fn full() -> QualitySpec {
        QualitySpec::new(
            Resolution::FULL,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg2,
        )
    }

    fn cif() -> QualitySpec {
        QualitySpec::new(
            Resolution::CIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        )
    }

    #[test]
    fn downscale_is_feasible() {
        let t = Transcode::plan(full(), cif()).unwrap();
        assert!(!t.is_identity());
        assert!(t.stream_size_factor() < 1.0);
    }

    #[test]
    fn upscale_is_rejected() {
        assert_eq!(Transcode::plan(cif(), full()).unwrap_err(), TranscodeError::Upscale);
    }

    #[test]
    fn color_upscale_rejected() {
        let mut lo = full();
        lo.color = ColorDepth::BITS_12;
        assert_eq!(Transcode::plan(lo, full()).unwrap_err(), TranscodeError::ColorUpscale);
    }

    #[test]
    fn rate_upscale_rejected() {
        let mut slow = full();
        slow.frame_rate = FrameRate::LOW;
        assert_eq!(Transcode::plan(slow, full()).unwrap_err(), TranscodeError::RateUpscale);
    }

    #[test]
    fn identity_transcode_is_free() {
        let t = Transcode::plan(full(), full()).unwrap();
        assert!(t.is_identity());
        assert_eq!(t.cpu_per_frame(&TranscodeCost::default()), SimDuration::ZERO);
        assert_eq!(t.output_bytes(1000), 1000);
        assert!(t.keeps_frame(0) && t.keeps_frame(7));
    }

    #[test]
    fn output_size_scales_with_pixels() {
        let t = Transcode::plan(full(), cif()).unwrap();
        let ratio = Resolution::CIF.pixels() as f64 / Resolution::FULL.pixels() as f64;
        let out = t.output_bytes(10_000) as f64;
        assert!((out / 10_000.0 - ratio).abs() < 0.01);
    }

    #[test]
    fn frame_rate_reduction_drops_evenly() {
        let mut half = full();
        half.frame_rate = FrameRate::from_millifps(full().frame_rate.millifps() / 2);
        let t = Transcode::plan(full(), half).unwrap();
        let kept = (0..1000).filter(|&i| t.keeps_frame(i)).count();
        assert!((499..=501).contains(&kept), "kept {kept}");
        // No long runs of drops: every window of 4 has >= 1 kept frame.
        for w in 0..996 {
            let k = (w..w + 4).filter(|&i| t.keeps_frame(i)).count();
            assert!(k >= 1);
        }
    }

    #[test]
    fn cpu_cost_scales_with_resolution() {
        let cost = TranscodeCost::default();
        let big = Transcode::plan(full(), cif()).unwrap().cpu_per_frame(&cost);
        let mut qcif = cif();
        qcif.resolution = Resolution::QCIF;
        let small = Transcode::plan(cif(), qcif).unwrap().cpu_per_frame(&cost);
        assert!(big > small);
        // Full-frame transcode costs milliseconds, not microseconds.
        assert!(big >= SimDuration::from_millis(2));
        assert!(big <= SimDuration::from_millis(10));
    }

    #[test]
    fn output_bytes_never_zero() {
        let mut tiny = full();
        tiny.resolution = Resolution::QCIF;
        tiny.color = ColorDepth::PALETTE;
        let t = Transcode::plan(full(), tiny).unwrap();
        assert!(t.output_bytes(1) >= 1);
    }
}
