//! Synthetic VBR frame-size traces.
//!
//! The paper streams real MPEG-1 clips; their variable bitrate is what
//! makes even the uncontended inter-frame delay jitter (Fig 5a/5b, "some
//! variance are inevitable in dealing with Variable Bitrate (VBR) media
//! streams"). We replace the clips with deterministic synthetic traces
//! that keep the relevant structure: I/P/B size ratios from the GOP
//! pattern, slow scene-level bitrate modulation, and per-frame log-normal
//! noise. A trace is fully determined by a seed and its parameters.

use crate::gop::{FrameType, GopPattern};
use crate::video::FrameRate;
use quasaq_sim::{Rng, SimDuration, SimTime};

/// Parameters of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceParams {
    /// Frames per second.
    pub frame_rate: FrameRate,
    /// Clip length.
    pub duration: SimDuration,
    /// GOP structure.
    pub gop: GopPattern,
    /// Target average bytes per frame (bitrate / fps).
    pub mean_frame_bytes: f64,
    /// Sigma of the per-frame log-normal noise (0 disables noise).
    pub noise_sigma: f64,
    /// Period of the slow scene-complexity modulation, in frames.
    pub scene_period: u64,
    /// Relative amplitude of the scene modulation (e.g. 0.3 = ±30 %).
    pub scene_amplitude: f64,
}

impl TraceParams {
    /// A trace matching a replica's bitrate with default VBR texture.
    pub fn with_bitrate(
        frame_rate: FrameRate,
        duration: SimDuration,
        gop: GopPattern,
        bytes_per_second: f64,
    ) -> Self {
        assert!(bytes_per_second > 0.0, "bitrate must be positive");
        TraceParams {
            frame_rate,
            duration,
            gop,
            mean_frame_bytes: bytes_per_second / frame_rate.fps(),
            noise_sigma: 0.18,
            scene_period: 240,
            scene_amplitude: 0.25,
        }
    }
}

/// One frame of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Zero-based frame index.
    pub index: u64,
    /// Coding type.
    pub ftype: FrameType,
    /// Encoded size in bytes.
    pub bytes: u32,
    /// Ideal presentation instant relative to stream start.
    pub pts: SimTime,
}

/// A fully materialized frame trace.
#[derive(Debug, Clone)]
pub struct FrameTrace {
    frames: Vec<Frame>,
    frame_rate: FrameRate,
    gop: GopPattern,
}

impl FrameTrace {
    /// Generates a deterministic trace from `seed` and `params`.
    pub fn generate(seed: u64, params: &TraceParams) -> Self {
        assert!(params.mean_frame_bytes > 0.0, "mean frame bytes must be positive");
        assert!(params.noise_sigma >= 0.0, "noise sigma must be non-negative");
        assert!((0.0..1.0).contains(&params.scene_amplitude), "scene amplitude must be in [0, 1)");
        let mut rng = Rng::new(seed);
        let n = params.frame_rate.frames_in(params.duration).max(1);
        let interval = params.frame_rate.frame_interval();
        let phase = rng.range_f64(0.0, std::f64::consts::TAU);
        // Log-normal with unit mean: exp(N(-sigma^2/2, sigma)).
        let mu = -params.noise_sigma * params.noise_sigma / 2.0;
        let mut frames = Vec::with_capacity(n as usize);
        for i in 0..n {
            let ftype = params.gop.frame_type(i);
            let weight = params.gop.size_weight(ftype);
            let scene = if params.scene_period > 0 {
                1.0 + params.scene_amplitude
                    * ((std::f64::consts::TAU * i as f64 / params.scene_period as f64) + phase)
                        .sin()
            } else {
                1.0
            };
            let noise =
                if params.noise_sigma > 0.0 { rng.lognormal(mu, params.noise_sigma) } else { 1.0 };
            let bytes = (params.mean_frame_bytes * weight * scene * noise).round().max(1.0);
            frames.push(Frame {
                index: i,
                ftype,
                bytes: bytes as u32,
                pts: SimTime::ZERO + interval * i,
            });
        }
        FrameTrace { frames, frame_rate: params.frame_rate, gop: params.gop.clone() }
    }

    /// All frames in presentation order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the trace has no frames (never happens for generated
    /// traces).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The trace's frame rate.
    pub fn frame_rate(&self) -> FrameRate {
        self.frame_rate
    }

    /// The trace's GOP pattern.
    pub fn gop(&self) -> &GopPattern {
        &self.gop
    }

    /// Total encoded bytes.
    pub fn total_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.bytes as u64).sum()
    }

    /// Playback duration (last pts plus one frame interval).
    pub fn duration(&self) -> SimDuration {
        match self.frames.last() {
            Some(f) => f.pts.duration_since(SimTime::ZERO) + self.frame_rate.frame_interval(),
            None => SimDuration::ZERO,
        }
    }

    /// Realized average bitrate in bytes/second.
    pub fn mean_rate_bps(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d == 0.0 {
            0.0
        } else {
            self.total_bytes() as f64 / d
        }
    }

    /// Peak frame size in bytes.
    pub fn peak_frame_bytes(&self) -> u32 {
        self.frames.iter().map(|f| f.bytes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TraceParams {
        TraceParams::with_bitrate(
            FrameRate::NTSC_FILM,
            SimDuration::from_secs(60),
            GopPattern::mpeg1_classic(),
            48_000.0, // DSL-class replica
        )
    }

    #[test]
    fn deterministic_generation() {
        let a = FrameTrace::generate(99, &params());
        let b = FrameTrace::generate(99, &params());
        assert_eq!(a.frames(), b.frames());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FrameTrace::generate(1, &params());
        let b = FrameTrace::generate(2, &params());
        assert_ne!(a.frames(), b.frames());
    }

    #[test]
    fn frame_count_and_pts_spacing() {
        let t = FrameTrace::generate(5, &params());
        assert_eq!(t.len() as u64, FrameRate::NTSC_FILM.frames_in(SimDuration::from_secs(60)));
        let interval = FrameRate::NTSC_FILM.frame_interval();
        for w in t.frames().windows(2) {
            assert_eq!(w[1].pts - w[0].pts, interval);
        }
    }

    #[test]
    fn realized_bitrate_near_target() {
        let t = FrameTrace::generate(7, &params());
        let rate = t.mean_rate_bps();
        assert!(
            (rate - 48_000.0).abs() / 48_000.0 < 0.10,
            "realized rate {rate} too far from 48000"
        );
    }

    #[test]
    fn i_frames_are_larger_on_average() {
        let t = FrameTrace::generate(11, &params());
        let avg = |ft: FrameType| {
            let xs: Vec<u64> =
                t.frames().iter().filter(|f| f.ftype == ft).map(|f| f.bytes as u64).collect();
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        };
        assert!(avg(FrameType::I) > avg(FrameType::P));
        assert!(avg(FrameType::P) > avg(FrameType::B));
    }

    #[test]
    fn noiseless_trace_is_smooth() {
        let mut p = params();
        p.noise_sigma = 0.0;
        p.scene_amplitude = 0.0;
        let t = FrameTrace::generate(3, &p);
        // All I frames identical.
        let i_sizes: Vec<u32> =
            t.frames().iter().filter(|f| f.ftype == FrameType::I).map(|f| f.bytes).collect();
        assert!(i_sizes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn gop_types_follow_pattern() {
        let t = FrameTrace::generate(13, &params());
        let g = GopPattern::mpeg1_classic();
        for f in t.frames().iter().take(36) {
            assert_eq!(f.ftype, g.frame_type(f.index));
        }
    }

    #[test]
    fn duration_and_peak() {
        let t = FrameTrace::generate(17, &params());
        let d = t.duration().as_secs_f64();
        assert!((d - 60.0).abs() < 0.1, "duration {d}");
        assert!(t.peak_frame_bytes() > 0);
        assert!(t.total_bytes() > 0);
    }

    #[test]
    fn minimum_one_frame() {
        let p = TraceParams::with_bitrate(
            FrameRate::NTSC_FILM,
            SimDuration::from_micros(1),
            GopPattern::mpeg1_classic(),
            1000.0,
        );
        let t = FrameTrace::generate(1, &p);
        assert_eq!(t.len(), 1);
    }
}
