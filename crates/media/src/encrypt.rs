//! Encryption activity model (Fig 2's activity set A5).
//!
//! The paper's plan space includes a choice of encryption algorithm for
//! secure delivery, and its pruning rules know that "encryption should
//! always follow the frame dropping since it is a waste of CPU cycles to
//! encrypt the data in frames that will be dropped". We model each
//! algorithm by its CPU throughput and a relative strength rating; the
//! query processor only needs those two numbers.

use quasaq_sim::SimDuration;
use std::fmt;

/// An encryption algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CipherAlgo {
    /// No encryption.
    #[default]
    None,
    /// A fast stream cipher (RC4-class): high throughput, moderate
    /// strength.
    Stream,
    /// A DES-class block cipher: slow, classic strength.
    Block,
    /// An AES-class block cipher: modern strength, mid throughput.
    Aes,
}

impl CipherAlgo {
    /// All algorithms.
    pub const ALL: [CipherAlgo; 4] =
        [CipherAlgo::None, CipherAlgo::Stream, CipherAlgo::Block, CipherAlgo::Aes];

    /// Encryption throughput in bytes per CPU second, calibrated to
    /// early-2000s measurements on the paper's hardware class.
    pub fn throughput_bps(self) -> f64 {
        match self {
            CipherAlgo::None => f64::INFINITY,
            CipherAlgo::Stream => 80e6, // RC4 ~80 MB/s
            CipherAlgo::Block => 12e6,  // DES ~12 MB/s
            CipherAlgo::Aes => 40e6,    // AES ~40 MB/s
        }
    }

    /// Relative cryptographic strength in `[0, 1]` for security-aware gain
    /// functions.
    pub fn strength(self) -> f64 {
        match self {
            CipherAlgo::None => 0.0,
            CipherAlgo::Stream => 0.5,
            CipherAlgo::Block => 0.7,
            CipherAlgo::Aes => 1.0,
        }
    }

    /// True when the algorithm actually encrypts.
    pub fn is_encrypting(self) -> bool {
        self != CipherAlgo::None
    }

    /// CPU work to encrypt `bytes`.
    pub fn cpu_for(self, bytes: u64) -> SimDuration {
        if !self.is_encrypting() {
            return SimDuration::ZERO;
        }
        let us = bytes as f64 / self.throughput_bps() * 1e6;
        SimDuration::from_micros(us.ceil() as u64)
    }

    /// CPU utilization fraction to encrypt a stream of `bytes_per_second`.
    pub fn cpu_share_for_rate(self, bytes_per_second: f64) -> f64 {
        if !self.is_encrypting() {
            return 0.0;
        }
        bytes_per_second / self.throughput_bps()
    }
}

impl fmt::Display for CipherAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CipherAlgo::None => write!(f, "plain"),
            CipherAlgo::Stream => write!(f, "stream-cipher"),
            CipherAlgo::Block => write!(f, "block-cipher"),
            CipherAlgo::Aes => write!(f, "aes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_free() {
        assert_eq!(CipherAlgo::None.cpu_for(1_000_000), SimDuration::ZERO);
        assert_eq!(CipherAlgo::None.cpu_share_for_rate(1e6), 0.0);
        assert!(!CipherAlgo::None.is_encrypting());
    }

    #[test]
    fn cost_scales_linearly() {
        let one = CipherAlgo::Aes.cpu_for(40_000_000);
        assert_eq!(one, SimDuration::from_secs(1));
        let half = CipherAlgo::Aes.cpu_for(20_000_000);
        assert_eq!(half, SimDuration::from_millis(500));
    }

    #[test]
    fn slower_cipher_costs_more() {
        let bytes = 1_000_000;
        assert!(CipherAlgo::Block.cpu_for(bytes) > CipherAlgo::Aes.cpu_for(bytes));
        assert!(CipherAlgo::Aes.cpu_for(bytes) > CipherAlgo::Stream.cpu_for(bytes));
    }

    #[test]
    fn strength_ordering() {
        assert!(CipherAlgo::Aes.strength() > CipherAlgo::Block.strength());
        assert!(CipherAlgo::Block.strength() > CipherAlgo::Stream.strength());
        assert_eq!(CipherAlgo::None.strength(), 0.0);
    }

    #[test]
    fn share_for_typical_stream_is_small() {
        // A 200 KB/s stream through AES costs 0.5% of a CPU.
        let share = CipherAlgo::Aes.cpu_share_for_rate(200_000.0);
        assert!((share - 0.005).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_zero_cost() {
        assert_eq!(CipherAlgo::Block.cpu_for(0), SimDuration::ZERO);
    }
}
