//! Property-based tests of the media substrate's invariants.

use proptest::prelude::*;
use quasaq_media::{
    ColorDepth, DropStrategy, FrameRate, FrameTrace, FrameType, GopPattern, QosRange, QualitySpec,
    Resolution, TraceParams, Transcode, VideoFormat,
};
use quasaq_sim::SimDuration;

fn spec_strategy() -> impl Strategy<Value = QualitySpec> {
    (
        1u32..8, // width rung x 128
        1u32..6, // height rung x 96
        prop::sample::select(vec![8u8, 12, 16, 24]),
        5u32..31, // fps
        prop::bool::ANY,
    )
        .prop_map(|(w, h, bits, fps, mpeg1)| {
            QualitySpec::new(
                Resolution::new(w * 128, h * 96),
                ColorDepth::from_bits(bits),
                FrameRate::from_fps(fps as f64),
                if mpeg1 { VideoFormat::Mpeg1 } else { VideoFormat::Mpeg2 },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dominance is a partial order consistent with `QosRange::exactly`.
    #[test]
    fn dominance_partial_order(a in spec_strategy(), b in spec_strategy()) {
        // Reflexive.
        prop_assert!(a.dominates(&a));
        // Antisymmetric up to equality of ordered dimensions.
        if a.dominates(&b) && b.dominates(&a) {
            prop_assert_eq!(a.resolution, b.resolution);
            prop_assert_eq!(a.color, b.color);
            prop_assert_eq!(a.frame_rate, b.frame_rate);
        }
        // A dominating spec can always reach the dominated spec's exact
        // range by downgrades.
        if a.dominates(&b) {
            prop_assert!(QosRange::exactly(&b).reachable_from(&a));
        }
    }

    /// A feasible transcode's output is always dominated by its source,
    /// and its size factor is at most ~1.
    #[test]
    fn transcode_only_degrades(a in spec_strategy(), b in spec_strategy()) {
        if let Ok(t) = Transcode::plan(a, b) {
            prop_assert!(a.dominates(t.target()));
            prop_assert!(t.stream_size_factor() <= 1.0 + 1e-9);
            prop_assert!(t.frame_keep_fraction() > 0.0);
            prop_assert!(t.frame_keep_fraction() <= 1.0 + 1e-9);
            // Frame keeping matches the keep fraction over a long run.
            let kept = (0..10_000).filter(|&i| t.keeps_frame(i)).count() as f64;
            prop_assert!((kept / 10_000.0 - t.frame_keep_fraction()).abs() < 0.01);
        }
    }

    /// Drop strategies' analytic keep fractions match the stateful filter
    /// exactly over whole GOPs, for any admissible pattern.
    #[test]
    fn drop_fractions_match_filter(n_b_pairs in 0usize..6, strategy_idx in 0usize..4) {
        // Build a pattern I (P B B)*k.
        let mut frames = vec![FrameType::I];
        for _ in 0..n_b_pairs {
            frames.extend([FrameType::P, FrameType::B, FrameType::B]);
        }
        let gop = GopPattern::new(frames);
        let strategy = DropStrategy::ALL[strategy_idx];
        let mut filter = quasaq_media::DropFilter::new(strategy);
        let gops = 20u64;
        let total = gop.len() as u64 * gops;
        let kept = (0..total).filter(|&i| filter.admit(gop.frame_type(i))).count() as f64;
        let expected = strategy.frame_keep_fraction(&gop) * total as f64;
        prop_assert!((kept - expected).abs() <= gops as f64, "kept {kept} vs {expected}");
    }

    /// Trace generation: deterministic, correct frame count, positive
    /// sizes, realized bitrate within 15% of target. Clips must span
    /// several scene-modulation periods (~10 s each) for the realized
    /// bitrate to average out.
    #[test]
    fn trace_invariants(seed in any::<u64>(), secs in 30u64..120, rate in 5_000u64..400_000) {
        let params = TraceParams::with_bitrate(
            FrameRate::NTSC_FILM,
            SimDuration::from_secs(secs),
            GopPattern::mpeg1_n15(),
            rate as f64,
        );
        let t = FrameTrace::generate(seed, &params);
        let t2 = FrameTrace::generate(seed, &params);
        prop_assert_eq!(t.frames(), t2.frames());
        prop_assert_eq!(t.len() as u64, FrameRate::NTSC_FILM.frames_in(SimDuration::from_secs(secs)));
        prop_assert!(t.frames().iter().all(|f| f.bytes >= 1));
        let realized = t.mean_rate_bps();
        prop_assert!(
            (realized - rate as f64).abs() / (rate as f64) < 0.15,
            "realized {realized} vs target {rate}"
        );
    }

    /// QosRange acceptance is monotone: anything accepted is also
    /// reachable, and the cheapest target is always accepted.
    #[test]
    fn range_acceptance_monotone(spec in spec_strategy(), floor in spec_strategy()) {
        let range = QosRange {
            min_resolution: floor.resolution,
            max_resolution: Resolution::new(
                floor.resolution.width * 2,
                floor.resolution.height * 2,
            ),
            min_color: floor.color,
            min_frame_rate: floor.frame_rate,
            max_frame_rate: FrameRate::from_fps(floor.frame_rate.fps() + 10.0),
            formats: None,
        };
        prop_assert!(range.is_valid());
        if range.accepts(&spec) {
            prop_assert!(range.reachable_from(&spec));
        }
        if let Some(target) = range.cheapest_target(&spec, VideoFormat::Mpeg1) {
            prop_assert!(range.accepts(&target), "cheapest target {target} not accepted by {range}");
            prop_assert!(spec.dominates(&target));
        }
    }
}
