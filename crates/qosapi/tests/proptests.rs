//! Property-based tests of the Composite QoS API's accounting invariants.

use proptest::prelude::*;
use quasaq_qosapi::{CompositeQosApi, ResourceKey, ResourceKind, ResourceVector};
use quasaq_sim::ServerId;

/// A demand confined to one server, small enough (≤ 4 parts × 0.2 of
/// capacity each) that it always fits an idle server.
fn demand_on(server: u32) -> impl Strategy<Value = ResourceVector> {
    proptest::collection::vec((0usize..4, 0.0f64..0.2), 1..5).prop_map(move |parts| {
        let mut v = ResourceVector::new();
        for (kind_idx, frac) in parts {
            let kind = ResourceKind::ALL[kind_idx];
            let amount = match kind {
                ResourceKind::Cpu => frac,
                ResourceKind::NetBandwidth => frac * 3_200_000.0,
                ResourceKind::DiskBandwidth => frac * 20_000_000.0,
                ResourceKind::Memory => frac * 512e6,
            };
            v.add(ResourceKey::new(ServerId(server), kind), amount);
        }
        v
    })
}

fn demand_strategy() -> impl Strategy<Value = ResourceVector> {
    proptest::collection::vec((0u32..3, 0usize..4, 0.0f64..0.4), 1..5).prop_map(|parts| {
        let mut v = ResourceVector::new();
        for (server, kind_idx, frac) in parts {
            let kind = ResourceKind::ALL[kind_idx];
            // Scale to each kind's capacity units.
            let amount = match kind {
                ResourceKind::Cpu => frac,
                ResourceKind::NetBandwidth => frac * 3_200_000.0,
                ResourceKind::DiskBandwidth => frac * 20_000_000.0,
                ResourceKind::Memory => frac * 512e6,
            };
            v.add(ResourceKey::new(ServerId(server), kind), amount);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Usage always equals the sum of outstanding reservations' demands,
    /// under any interleaving of reserve/release, and never exceeds
    /// capacity.
    #[test]
    fn accounting_matches_outstanding_set(
        ops in proptest::collection::vec((demand_strategy(), any::<bool>()), 1..60),
    ) {
        let mut api = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6);
        let mut held: Vec<(quasaq_qosapi::ReservationId, ResourceVector)> = Vec::new();
        for (demand, release_one) in ops {
            if release_one && !held.is_empty() {
                let (id, _) = held.swap_remove(0);
                api.release(id);
            } else if let Ok(id) = api.reserve(&demand) {
                held.push((id, demand));
            }
            // Invariant: per-bucket usage equals the outstanding sum.
            let mut expected = ResourceVector::new();
            for (_, d) in &held {
                expected = expected.plus(d);
            }
            for key in api.buckets().collect::<Vec<_>>() {
                let used = api.used(key).unwrap();
                prop_assert!((used - expected.get(key)).abs() < 1e-6,
                    "{key}: used {used} vs expected {}", expected.get(key));
                prop_assert!(used <= api.capacity(key).unwrap() + 1e-6);
            }
            prop_assert_eq!(api.reservation_count(), held.len());
        }
    }

    /// `admits` agrees with `reserve`: a demand is reservable iff the
    /// check passes.
    #[test]
    fn admits_predicts_reserve(preload in demand_strategy(), probe in demand_strategy()) {
        let mut api = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6);
        let _ = api.reserve(&preload);
        let predicted = api.admits(&probe).is_ok();
        let actual = api.reserve(&probe).is_ok();
        prop_assert_eq!(predicted, actual);
    }

    /// `max_fill_with` is exactly the max over buckets of
    /// `(used + demand) / capacity` — Eq. (1) of the paper.
    #[test]
    fn max_fill_matches_manual_eq1(preload in demand_strategy(), probe in demand_strategy()) {
        let mut api = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6);
        let _ = api.reserve(&preload);
        let mut manual = 0.0f64;
        for (key, amount) in probe.iter() {
            let used = api.used(key).unwrap();
            let cap = api.capacity(key).unwrap();
            manual = manual.max((used + amount) / cap);
        }
        prop_assert!((api.max_fill_with(&probe) - manual).abs() < 1e-12);
    }

    /// Renegotiation either replaces the reservation with the new demand
    /// or leaves the old one fully intact — never a mix.
    #[test]
    fn renegotiation_is_atomic(first in demand_strategy(), second in demand_strategy()) {
        let mut api = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6);
        prop_assume!(api.reserve(&first).is_ok());
        let id = {
            // Re-grab the id deterministically: make a fresh API to keep it simple.
            let mut api2 = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6);
            let id = api2.reserve(&first).unwrap();
            api = api2;
            id
        };
        match api.renegotiate(id, &second) {
            Ok(new_id) => {
                prop_assert_eq!(api.demand_of(new_id), Some(&second));
                for (key, amount) in second.iter() {
                    prop_assert!((api.used(key).unwrap() - amount).abs() < 1e-6);
                }
            }
            Err(_) => {
                prop_assert_eq!(api.demand_of(id), Some(&first));
                for (key, amount) in first.iter() {
                    prop_assert!((api.used(key).unwrap() - amount).abs() < 1e-6);
                }
            }
        }
        prop_assert_eq!(api.reservation_count(), 1);
    }

    /// A rejected renegotiation happens entirely in the feasibility
    /// pre-check, before any bucket is touched — so every bucket's usage
    /// is *bitwise* identical afterwards, not merely close. This is the
    /// invariant the queued admission front end leans on: a failed retry
    /// must leave the cluster exactly as it found it.
    #[test]
    fn failed_renegotiation_restores_usage_bitwise(
        preload in demand_strategy(),
        first in demand_strategy(),
    ) {
        let mut api = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6);
        let _ = api.reserve(&preload);
        prop_assume!(api.admits(&first).is_ok());
        let id = api.reserve(&first).unwrap();
        let keys: Vec<_> = api.buckets().collect();
        let before: Vec<u64> = keys.iter().map(|&k| api.used(k).unwrap().to_bits()).collect();
        let count = api.reservation_count();
        // Three servers' CPUs hold at most 1.0 each, so 3.0 on one CPU can
        // never fit, even counting the old reservation's own share.
        let mut impossible = ResourceVector::new();
        impossible.add(ResourceKey::new(ServerId(0), ResourceKind::Cpu), 3.0);
        prop_assert!(api.renegotiate(id, &impossible).is_err());
        let after: Vec<u64> = keys.iter().map(|&k| api.used(k).unwrap().to_bits()).collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(api.demand_of(id), Some(&first));
        prop_assert_eq!(api.reservation_count(), count);
    }

    /// Renegotiating to a demand inside the session's own share — shrink,
    /// or grow while staying under bucket capacity on an otherwise idle
    /// cluster — always admits, and the new usage lands exactly.
    #[test]
    fn renegotiate_within_own_share_admits(
        first in demand_strategy(),
        scale in 0.0f64..1.5,
    ) {
        let mut api = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6);
        prop_assume!(api.admits(&first).is_ok());
        let id = api.reserve(&first).unwrap();
        let mut scaled = ResourceVector::new();
        for (key, amount) in first.iter() {
            let cap = api.capacity(key).unwrap();
            scaled.add(key, (amount * scale).min(0.9 * cap));
        }
        let new_id = api.renegotiate(id, &scaled).unwrap();
        prop_assert_eq!(api.demand_of(new_id), Some(&scaled));
        prop_assert_eq!(api.reservation_count(), 1);
        // The sole reservation reserves into empty buckets: usage is the
        // demand itself, exactly.
        for (key, amount) in scaled.iter() {
            prop_assert_eq!(api.used(key).unwrap().to_bits(), amount.to_bits());
        }
    }

    /// Moving a session to a different server releases every bucket on the
    /// old one: a cross-server renegotiation must not strand phantom usage
    /// where the stream no longer runs.
    #[test]
    fn cross_server_move_releases_old_buckets(
        at_zero in demand_on(0),
        at_two in demand_on(2),
    ) {
        let mut api = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6);
        let id = api.reserve(&at_zero).unwrap();
        let new_id = api.renegotiate(id, &at_two).unwrap();
        prop_assert_eq!(api.demand_of(new_id), Some(&at_two));
        prop_assert_eq!(api.reservation_count(), 1);
        for key in api.buckets().collect::<Vec<_>>() {
            if key.server == ServerId(0) {
                // Single-lease release subtracts the exact amount added.
                prop_assert_eq!(api.used(key).unwrap(), 0.0);
            }
        }
        for (key, amount) in at_two.iter() {
            prop_assert_eq!(api.used(key).unwrap().to_bits(), amount.to_bits());
        }
    }
}
