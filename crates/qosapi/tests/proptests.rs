//! Property-based tests of the Composite QoS API's accounting invariants.

use proptest::prelude::*;
use quasaq_qosapi::{CompositeQosApi, ResourceKey, ResourceKind, ResourceVector};
use quasaq_sim::ServerId;

fn demand_strategy() -> impl Strategy<Value = ResourceVector> {
    proptest::collection::vec((0u32..3, 0usize..4, 0.0f64..0.4), 1..5).prop_map(|parts| {
        let mut v = ResourceVector::new();
        for (server, kind_idx, frac) in parts {
            let kind = ResourceKind::ALL[kind_idx];
            // Scale to each kind's capacity units.
            let amount = match kind {
                ResourceKind::Cpu => frac,
                ResourceKind::NetBandwidth => frac * 3_200_000.0,
                ResourceKind::DiskBandwidth => frac * 20_000_000.0,
                ResourceKind::Memory => frac * 512e6,
            };
            v.add(ResourceKey::new(ServerId(server), kind), amount);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Usage always equals the sum of outstanding reservations' demands,
    /// under any interleaving of reserve/release, and never exceeds
    /// capacity.
    #[test]
    fn accounting_matches_outstanding_set(
        ops in proptest::collection::vec((demand_strategy(), any::<bool>()), 1..60),
    ) {
        let mut api = CompositeQosApi::homogeneous_cluster(3, 3_200_000.0, 20_000_000.0, 512e6);
        let mut held: Vec<(quasaq_qosapi::ReservationId, ResourceVector)> = Vec::new();
        for (demand, release_one) in ops {
            if release_one && !held.is_empty() {
                let (id, _) = held.swap_remove(0);
                api.release(id);
            } else if let Ok(id) = api.reserve(&demand) {
                held.push((id, demand));
            }
            // Invariant: per-bucket usage equals the outstanding sum.
            let mut expected = ResourceVector::new();
            for (_, d) in &held {
                expected = expected.plus(d);
            }
            for key in api.buckets().collect::<Vec<_>>() {
                let used = api.used(key).unwrap();
                prop_assert!((used - expected.get(key)).abs() < 1e-6,
                    "{key}: used {used} vs expected {}", expected.get(key));
                prop_assert!(used <= api.capacity(key).unwrap() + 1e-6);
            }
            prop_assert_eq!(api.reservation_count(), held.len());
        }
    }

    /// `admits` agrees with `reserve`: a demand is reservable iff the
    /// check passes.
    #[test]
    fn admits_predicts_reserve(preload in demand_strategy(), probe in demand_strategy()) {
        let mut api = CompositeQosApi::homogeneous_cluster(3, 3_200_000.0, 20_000_000.0, 512e6);
        let _ = api.reserve(&preload);
        let predicted = api.admits(&probe).is_ok();
        let actual = api.reserve(&probe).is_ok();
        prop_assert_eq!(predicted, actual);
    }

    /// `max_fill_with` is exactly the max over buckets of
    /// `(used + demand) / capacity` — Eq. (1) of the paper.
    #[test]
    fn max_fill_matches_manual_eq1(preload in demand_strategy(), probe in demand_strategy()) {
        let mut api = CompositeQosApi::homogeneous_cluster(3, 3_200_000.0, 20_000_000.0, 512e6);
        let _ = api.reserve(&preload);
        let mut manual = 0.0f64;
        for (key, amount) in probe.iter() {
            let used = api.used(key).unwrap();
            let cap = api.capacity(key).unwrap();
            manual = manual.max((used + amount) / cap);
        }
        prop_assert!((api.max_fill_with(&probe) - manual).abs() < 1e-12);
    }

    /// Renegotiation either replaces the reservation with the new demand
    /// or leaves the old one fully intact — never a mix.
    #[test]
    fn renegotiation_is_atomic(first in demand_strategy(), second in demand_strategy()) {
        let mut api = CompositeQosApi::homogeneous_cluster(3, 3_200_000.0, 20_000_000.0, 512e6);
        prop_assume!(api.reserve(&first).is_ok());
        let id = {
            // Re-grab the id deterministically: make a fresh API to keep it simple.
            let mut api2 = CompositeQosApi::homogeneous_cluster(3, 3_200_000.0, 20_000_000.0, 512e6);
            let id = api2.reserve(&first).unwrap();
            api = api2;
            id
        };
        match api.renegotiate(id, &second) {
            Ok(new_id) => {
                prop_assert_eq!(api.demand_of(new_id), Some(&second));
                for (key, amount) in second.iter() {
                    prop_assert!((api.used(key).unwrap() - amount).abs() < 1e-6);
                }
            }
            Err(_) => {
                prop_assert_eq!(api.demand_of(id), Some(&first));
                for (key, amount) in first.iter() {
                    prop_assert!((api.used(key).unwrap() - amount).abs() < 1e-6);
                }
            }
        }
        prop_assert_eq!(api.reservation_count(), 1);
    }
}
