//! Resource vocabulary: kinds, per-server keys, and resource vectors.
//!
//! The paper's system-level QoS parameters are "CPU cycles, memory buffer,
//! disk space and bandwidth" plus network bandwidth (Table 1). A query
//! plan's resource consumption is summarized as a *resource vector* — "the
//! Plan Generator computes its resource requirements (in the form of a
//! resource vector)" — with one entry per (server, resource-kind) bucket.

use quasaq_sim::ServerId;
use std::fmt;

/// A kind of reservable resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// CPU, in fractions of one processor (0.0–1.0 per server).
    Cpu,
    /// Outbound network bandwidth, in bytes/second.
    NetBandwidth,
    /// Disk read bandwidth, in bytes/second.
    DiskBandwidth,
    /// Stream buffer memory, in bytes.
    Memory,
}

impl ResourceKind {
    /// All kinds, in bucket order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::NetBandwidth,
        ResourceKind::DiskBandwidth,
        ResourceKind::Memory,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Cpu => write!(f, "cpu"),
            ResourceKind::NetBandwidth => write!(f, "net-bw"),
            ResourceKind::DiskBandwidth => write!(f, "disk-bw"),
            ResourceKind::Memory => write!(f, "memory"),
        }
    }
}

/// One bucket: a resource kind on a particular server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceKey {
    /// The server holding the resource.
    pub server: ServerId,
    /// The resource kind.
    pub kind: ResourceKind,
}

impl ResourceKey {
    /// Creates a key.
    pub fn new(server: ServerId, kind: ResourceKind) -> Self {
        ResourceKey { server, kind }
    }
}

impl fmt::Display for ResourceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.server, self.kind)
    }
}

/// A sparse vector of resource demands (or capacities), keyed by bucket.
/// Amounts are in each kind's native unit and must be non-negative.
///
/// Demand vectors are tiny (a streaming plan touches at most five buckets:
/// disk and net at the source, cpu/net/memory at the target), and the plan
/// generator builds one per candidate plan — millions per scale run. The
/// entries therefore live in a single sorted `Vec` rather than a tree: one
/// allocation per vector, binary-searched lookups, and cache-line iteration
/// in the admission and LRB hot paths. Iteration order (ascending
/// `ResourceKey`) is identical to the previous tree-backed layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResourceVector {
    entries: Vec<(ResourceKey, f64)>,
}

impl ResourceVector {
    /// The empty (zero) vector.
    pub fn new() -> Self {
        ResourceVector::default()
    }

    /// The empty vector with room for `n` buckets before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        ResourceVector { entries: Vec::with_capacity(n) }
    }

    fn position(&self, key: ResourceKey) -> Result<usize, usize> {
        self.entries.binary_search_by(|&(k, _)| k.cmp(&key))
    }

    /// Sets the demand for one bucket, replacing any previous value.
    /// Zero demands are dropped from the vector.
    pub fn set(&mut self, key: ResourceKey, amount: f64) -> &mut Self {
        assert!(amount >= 0.0 && amount.is_finite(), "resource amounts must be non-negative");
        match self.position(key) {
            Ok(i) if amount == 0.0 => {
                self.entries.remove(i);
            }
            Ok(i) => self.entries[i].1 = amount,
            Err(_) if amount == 0.0 => {}
            Err(i) => self.entries.insert(i, (key, amount)),
        }
        self
    }

    /// Adds `amount` to a bucket.
    pub fn add(&mut self, key: ResourceKey, amount: f64) -> &mut Self {
        assert!(amount >= 0.0 && amount.is_finite(), "resource amounts must be non-negative");
        if amount > 0.0 {
            match self.position(key) {
                Ok(i) => self.entries[i].1 += amount,
                Err(i) => self.entries.insert(i, (key, amount)),
            }
        }
        self
    }

    /// Builder-style `set`.
    pub fn with(mut self, key: ResourceKey, amount: f64) -> Self {
        self.set(key, amount);
        self
    }

    /// The demand on a bucket (0 when absent).
    pub fn get(&self, key: ResourceKey) -> f64 {
        match self.position(key) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Non-zero entries in bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKey, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// True when all demands are zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of non-zero buckets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = self.clone();
        for (k, v) in other.iter() {
            out.add(k, v);
        }
        out
    }

    /// Component-wise scaling by a non-negative factor.
    pub fn scaled(&self, factor: f64) -> ResourceVector {
        assert!(factor >= 0.0 && factor.is_finite(), "scale factor must be non-negative");
        let mut out = ResourceVector::new();
        for (k, v) in self.iter() {
            out.set(k, v * factor);
        }
        out
    }

    /// True when every demand in `self` is `<=` the corresponding entry in
    /// `capacity`.
    pub fn fits_within(&self, capacity: &ResourceVector) -> bool {
        self.iter().all(|(k, v)| v <= capacity.get(k) + 1e-9)
    }

    /// Sum of all demands on one server (mixed units — only meaningful for
    /// displays and debugging).
    pub fn server_total(&self, server: ServerId) -> f64 {
        self.iter().filter(|(k, _)| k.server == server).map(|(_, v)| v).sum()
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: u32, kind: ResourceKind) -> ResourceKey {
        ResourceKey::new(ServerId(s), kind)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = ResourceVector::new();
        v.set(key(0, ResourceKind::Cpu), 0.25);
        assert_eq!(v.get(key(0, ResourceKind::Cpu)), 0.25);
        assert_eq!(v.get(key(1, ResourceKind::Cpu)), 0.0);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn zero_entries_are_dropped() {
        let mut v = ResourceVector::new();
        v.set(key(0, ResourceKind::Cpu), 0.5);
        v.set(key(0, ResourceKind::Cpu), 0.0);
        assert!(v.is_empty());
        v.add(key(0, ResourceKind::Memory), 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn add_accumulates() {
        let mut v = ResourceVector::new();
        v.add(key(0, ResourceKind::NetBandwidth), 100.0);
        v.add(key(0, ResourceKind::NetBandwidth), 50.0);
        assert_eq!(v.get(key(0, ResourceKind::NetBandwidth)), 150.0);
    }

    #[test]
    fn plus_and_scaled() {
        let a = ResourceVector::new()
            .with(key(0, ResourceKind::Cpu), 0.1)
            .with(key(0, ResourceKind::NetBandwidth), 100.0);
        let b = ResourceVector::new().with(key(0, ResourceKind::Cpu), 0.2);
        let sum = a.plus(&b);
        assert!((sum.get(key(0, ResourceKind::Cpu)) - 0.3).abs() < 1e-12);
        assert_eq!(sum.get(key(0, ResourceKind::NetBandwidth)), 100.0);
        let doubled = a.scaled(2.0);
        assert!((doubled.get(key(0, ResourceKind::Cpu)) - 0.2).abs() < 1e-12);
        assert!(a.scaled(0.0).is_empty());
    }

    #[test]
    fn fits_within() {
        let cap = ResourceVector::new()
            .with(key(0, ResourceKind::Cpu), 1.0)
            .with(key(0, ResourceKind::NetBandwidth), 3_200_000.0);
        let ok = ResourceVector::new()
            .with(key(0, ResourceKind::Cpu), 0.3)
            .with(key(0, ResourceKind::NetBandwidth), 48_000.0);
        let too_big = ResourceVector::new().with(key(0, ResourceKind::Cpu), 1.5);
        let wrong_server = ResourceVector::new().with(key(1, ResourceKind::Cpu), 0.1);
        assert!(ok.fits_within(&cap));
        assert!(!too_big.fits_within(&cap));
        assert!(!wrong_server.fits_within(&cap));
    }

    #[test]
    fn server_total_filters() {
        let v = ResourceVector::new()
            .with(key(0, ResourceKind::Cpu), 0.1)
            .with(key(1, ResourceKind::Cpu), 0.9);
        assert!((v.server_total(ServerId(0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_amount_rejected() {
        let mut v = ResourceVector::new();
        v.set(key(0, ResourceKind::Cpu), -0.1);
    }

    #[test]
    fn display_is_compact() {
        let v = ResourceVector::new().with(key(0, ResourceKind::Cpu), 0.5);
        assert_eq!(v.to_string(), "[server-0/cpu=0.500]");
    }
}
