//! # quasaq-qosapi — the Composite QoS API substrate
//!
//! The paper builds its low-level QoS control on the GARA middleware
//! (per-resource managers, with DSRT as the CPU scheduler) and wraps it in
//! a *Composite QoS API* that "hides implementation and access details of
//! underlying APIs (i.e. system and network)" and provides admission
//! control, resource reservation, and renegotiation. This crate is that
//! layer:
//!
//! * [`resource`] — resource kinds, per-server buckets, and
//!   [`ResourceVector`]s (the unit of plan cost in QuaSAQ).
//! * [`manager`] — one [`manager::ResourceManager`] per bucket with
//!   leases.
//! * [`composite`] — [`CompositeQosApi`]: atomic multi-bucket
//!   reservations, admission checks, the LRB fill projection of Eq. (1),
//!   and atomic renegotiation.

pub mod composite;
pub mod manager;
pub mod resource;

pub use composite::{AdmissionError, CompositeQosApi, ReservationId};
pub use manager::{BucketFull, LeaseId, ResourceManager};
pub use resource::{ResourceKey, ResourceKind, ResourceVector};
