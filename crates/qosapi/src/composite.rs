//! The Composite QoS API.
//!
//! "The Composite QoS API hides implementation and access details of
//! underlying APIs (i.e. system and network) and offers control to upper
//! layers (e.g. Plan Generator) at the same time. The major functionality
//! provided by the Composite QoS API is QoS-related resource management:
//! 1. admission control … 2. resource reservation … 3. renegotiation."
//!
//! [`CompositeQosApi`] shards its buckets into one [`ServerDomain`] per
//! server — the server's resource-kind managers plus its failure stash —
//! and reserves entire [`ResourceVector`]s atomically: either every
//! bucket admits its share or nothing is reserved. Reservations,
//! releases, and server failures all route through the owning domain;
//! bucket iteration stays in global `(server, kind)` order, so the
//! sharded layout is observationally identical to a flat bucket map.

use crate::manager::{BucketFull, LeaseId, ResourceManager};
use crate::resource::{ResourceKey, ResourceKind, ResourceVector};
use quasaq_sim::ServerId;

/// A composite reservation spanning several buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReservationId(pub u64);

/// Why a composite reservation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// A bucket would overflow.
    Rejected(BucketFull),
    /// The demand references a bucket with no registered manager.
    UnknownBucket(ResourceKey),
    /// The reservation id is not outstanding.
    UnknownReservation(ReservationId),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Rejected(b) => write!(f, "admission rejected: {b}"),
            AdmissionError::UnknownBucket(k) => write!(f, "no resource manager for {k}"),
            AdmissionError::UnknownReservation(r) => write!(f, "unknown reservation {r:?}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

struct Reservation {
    demand: ResourceVector,
    leases: Vec<(ResourceKey, LeaseId)>,
}

/// One server's QoS resource domain: its per-kind bucket managers (a
/// fixed slot per [`ResourceKind`], in declaration order so bucket
/// iteration stays sorted), plus the capacities stashed while the server
/// is down so a later restart can re-register them at their original
/// sizes.
#[derive(Default)]
struct ServerDomain {
    managers: [Option<ResourceManager>; ResourceKind::ALL.len()],
    failed: Option<Vec<(ResourceKind, f64)>>,
}

impl ServerDomain {
    fn is_empty(&self) -> bool {
        self.managers.iter().all(|m| m.is_none())
    }
}

/// Per-server bucket domains plus composite (all-or-nothing)
/// reservations.
///
/// Domains live in a dense `ServerId.0`-indexed arena and reservations in
/// a monotonic-id slab, so every lookup on the admission hot path is an
/// array index rather than a tree walk.
pub struct CompositeQosApi {
    domains: Vec<ServerDomain>,
    /// Slab indexed by `ReservationId.0`; ids are never reused, so a
    /// released slot stays `None` (release idempotency, stale-id safety).
    reservations: Vec<Option<Reservation>>,
    outstanding: usize,
    next_id: u64,
    /// Bumped on every *structural* state change — bucket registration,
    /// server failure/restore, capacity re-rating — but NOT on
    /// reserve/release. Plan caches key on this: enumeration and the
    /// capacity-based feasibility cut depend only on structure, while
    /// usage-dependent ranking is recomputed live on every admission.
    state_epoch: u64,
}

impl CompositeQosApi {
    /// Creates an API with no managed buckets.
    pub fn new() -> Self {
        CompositeQosApi {
            domains: Vec::new(),
            reservations: Vec::new(),
            outstanding: 0,
            next_id: 0,
            state_epoch: 0,
        }
    }

    /// The structural-state epoch: changes whenever the set of managed
    /// buckets or any bucket capacity changes (register / fail_server /
    /// restore_server / set_capacity). Reserve and release do *not* bump
    /// it — that coarseness is what makes it a useful cache key.
    pub fn state_epoch(&self) -> u64 {
        self.state_epoch
    }

    /// Builds an API for a homogeneous cluster: one domain per server,
    /// each with one CPU and the given bandwidth/memory capacities.
    pub fn homogeneous_cluster(
        servers: impl IntoIterator<Item = ServerId>,
        net_bps: f64,
        disk_bps: f64,
        memory_bytes: f64,
    ) -> Self {
        let mut api = CompositeQosApi::new();
        for server in servers {
            api.register(ResourceKey::new(server, ResourceKind::Cpu), 1.0);
            api.register(ResourceKey::new(server, ResourceKind::NetBandwidth), net_bps);
            api.register(ResourceKey::new(server, ResourceKind::DiskBandwidth), disk_bps);
            api.register(ResourceKey::new(server, ResourceKind::Memory), memory_bytes);
        }
        api
    }

    fn manager(&self, key: ResourceKey) -> Option<&ResourceManager> {
        self.domains.get(key.server.0 as usize)?.managers[key.kind as usize].as_ref()
    }

    fn manager_mut(&mut self, key: ResourceKey) -> Option<&mut ResourceManager> {
        self.domains.get_mut(key.server.0 as usize)?.managers[key.kind as usize].as_mut()
    }

    /// Registers a manager for a bucket. Replaces any existing manager
    /// (and its reservations' accounting), so call only at setup time.
    pub fn register(&mut self, key: ResourceKey, capacity: f64) {
        let slot = key.server.0 as usize;
        if slot >= self.domains.len() {
            self.domains.resize_with(slot + 1, ServerDomain::default);
        }
        self.domains[slot].managers[key.kind as usize] = Some(ResourceManager::new(key, capacity));
        self.state_epoch += 1;
    }

    /// Re-rates a managed bucket to a new capacity (link degradation or
    /// recovery), leaving existing reservations untouched — shrinking below
    /// current usage oversubscribes the bucket, which only blocks new
    /// admissions. Returns `false` (and changes nothing) for unmanaged
    /// buckets. Bumps the [state epoch](Self::state_epoch), except when the
    /// new capacity is bit-equal to the current one: a no-op re-rate leaves
    /// every capacity-derived decision (and the
    /// [fingerprint](Self::capacity_fingerprint)) unchanged, so
    /// invalidating plan caches over it would only cost hit rate — stochastic
    /// link trajectories re-assert the same level routinely.
    pub fn set_capacity(&mut self, key: ResourceKey, capacity: f64) -> bool {
        match self.manager_mut(key) {
            Some(mgr) => {
                if mgr.capacity().to_bits() != capacity.to_bits() {
                    mgr.set_capacity(capacity);
                    self.state_epoch += 1;
                }
                true
            }
            None => false,
        }
    }

    /// The managed buckets, in global `(server, kind)` order.
    pub fn buckets(&self) -> impl Iterator<Item = ResourceKey> + '_ {
        self.domains.iter().enumerate().flat_map(|(s, d)| {
            ResourceKind::ALL
                .iter()
                .filter(move |&&k| d.managers[k as usize].is_some())
                .map(move |&k| ResourceKey::new(ServerId(s as u32), k))
        })
    }

    /// Capacity of a bucket (`None` when unmanaged).
    pub fn capacity(&self, key: ResourceKey) -> Option<f64> {
        self.manager(key).map(|m| m.capacity())
    }

    /// A deterministic hash of every managed bucket's identity and
    /// capacity — usage excluded. O(buckets), allocation-free.
    ///
    /// Plan caches compare this on every hit as cheap revalidation: all
    /// capacity mutations bump the [state epoch](Self::state_epoch), so
    /// within one epoch the fingerprint is constant, and a mismatch means
    /// something re-rated a bucket behind the API's back — cached
    /// feasibility cuts must not be trusted.
    pub fn capacity_fingerprint(&self) -> u64 {
        // FNV-1a over (server, kind, capacity bits).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (s, d) in self.domains.iter().enumerate() {
            for &k in ResourceKind::ALL.iter() {
                if let Some(m) = d.managers[k as usize].as_ref() {
                    mix(s as u64);
                    mix(k as u64 + 1);
                    mix(m.capacity().to_bits());
                }
            }
        }
        h
    }

    /// Current fill fraction of a bucket (`None` when unmanaged).
    pub fn fill(&self, key: ResourceKey) -> Option<f64> {
        self.manager(key).map(|m| m.fill())
    }

    /// Current usage of a bucket in native units.
    pub fn used(&self, key: ResourceKey) -> Option<f64> {
        self.manager(key).map(|m| m.used())
    }

    /// Number of outstanding composite reservations. O(1): counted, not
    /// scanned.
    pub fn reservation_count(&self) -> usize {
        self.outstanding
    }

    /// Admission check without reserving: can `demand` fit right now?
    pub fn admits(&self, demand: &ResourceVector) -> Result<(), AdmissionError> {
        for (key, amount) in demand.iter() {
            let mgr = self.manager(key).ok_or(AdmissionError::UnknownBucket(key))?;
            if !mgr.can_reserve(amount) {
                return Err(AdmissionError::Rejected(BucketFull {
                    key,
                    requested: amount,
                    available: mgr.available(),
                }));
            }
        }
        Ok(())
    }

    /// The LRB projection (Eq. 1): the maximum bucket fill if `demand`
    /// were admitted, `max_i (U_i + r_i) / R_i`. Values above 1.0 mean the
    /// demand does not fit. Unknown buckets project to infinity.
    pub fn max_fill_with(&self, demand: &ResourceVector) -> f64 {
        let mut max = 0.0f64;
        for (key, amount) in demand.iter() {
            match self.manager(key) {
                Some(m) => max = max.max(m.fill_with(amount)),
                None => return f64::INFINITY,
            }
        }
        max
    }

    /// Reserves `demand` atomically.
    pub fn reserve(&mut self, demand: &ResourceVector) -> Result<ReservationId, AdmissionError> {
        // Two-phase: check everything first so failure needs no rollback
        // of partially acquired leases.
        self.admits(demand)?;
        let mut leases = Vec::with_capacity(demand.len());
        for (key, amount) in demand.iter() {
            let mgr = self.manager_mut(key).expect("checked above");
            match mgr.reserve(amount) {
                Ok(lease) => leases.push((key, lease)),
                Err(full) => {
                    // Unreachable in single-threaded use, but roll back
                    // defensively.
                    for (k, l) in leases {
                        self.manager_mut(k).expect("held lease").release(l);
                    }
                    return Err(AdmissionError::Rejected(full));
                }
            }
        }
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        debug_assert_eq!(self.reservations.len() as u64, id.0);
        self.reservations.push(Some(Reservation { demand: demand.clone(), leases }));
        self.outstanding += 1;
        Ok(id)
    }

    /// Releases a composite reservation (idempotent).
    pub fn release(&mut self, id: ReservationId) {
        let taken = self.reservations.get_mut(id.0 as usize).and_then(Option::take);
        if let Some(res) = taken {
            self.outstanding -= 1;
            for (key, lease) in res.leases {
                if let Some(mgr) = self.manager_mut(key) {
                    mgr.release(lease);
                }
            }
        }
    }

    /// The demand vector held by a reservation.
    pub fn demand_of(&self, id: ReservationId) -> Option<&ResourceVector> {
        self.reservations.get(id.0 as usize)?.as_ref().map(|r| &r.demand)
    }

    /// Simulates the loss of a server: every bucket its domain hosted
    /// disappears and every composite reservation touching it is cancelled
    /// (its shares on surviving servers are released too — a half-dead
    /// session is useless). Returns the cancelled reservation ids so the
    /// caller can re-plan the affected sessions.
    pub fn fail_server(&mut self, server: ServerId) -> Vec<ReservationId> {
        let affected: Vec<ReservationId> = self
            .reservations
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|r| (i, r)))
            .filter(|(_, r)| r.demand.iter().any(|(k, _)| k.server == server))
            .map(|(i, _)| ReservationId(i as u64))
            .collect();
        for &id in &affected {
            self.release(id);
        }
        if let Some(domain) = self.domains.get_mut(server.0 as usize) {
            if !domain.is_empty() {
                // A second failure of an already-empty domain keeps the
                // first stash (nothing new is lost).
                domain.failed = Some(
                    ResourceKind::ALL
                        .iter()
                        .filter_map(|&k| {
                            domain.managers[k as usize].as_ref().map(|m| (k, m.capacity()))
                        })
                        .collect(),
                );
                domain.managers = Default::default();
                self.state_epoch += 1;
            }
        }
        affected
    }

    /// Brings a failed server back: its domain's buckets are re-registered
    /// empty at their pre-failure capacities, so new admissions against it
    /// succeed again. Returns `false` when the server was not down
    /// (unknown or never failed), in which case nothing changes.
    pub fn restore_server(&mut self, server: ServerId) -> bool {
        let Some(buckets) = self.domains.get_mut(server.0 as usize).and_then(|d| d.failed.take())
        else {
            return false;
        };
        for (kind, capacity) in buckets {
            self.register(ResourceKey::new(server, kind), capacity);
        }
        true
    }

    /// True when `server` is currently failed (its buckets unregistered).
    pub fn is_failed(&self, server: ServerId) -> bool {
        self.domains.get(server.0 as usize).is_some_and(|d| d.failed.is_some())
    }

    /// Renegotiates a reservation to `new_demand` atomically: on failure
    /// the original reservation is kept. Returns the (possibly new)
    /// reservation id.
    ///
    /// Renegotiation happens "when QoS requirements are modified during
    /// media playback" or "when the user-specified QoP is rejected by the
    /// admission control module".
    pub fn renegotiate(
        &mut self,
        id: ReservationId,
        new_demand: &ResourceVector,
    ) -> Result<ReservationId, AdmissionError> {
        let Some(old) = self.demand_of(id).cloned() else {
            return Err(AdmissionError::UnknownReservation(id));
        };
        // Feasibility test against usage with the old reservation removed:
        // for each bucket, new demand must fit within the headroom left
        // once the old share is returned. Headroom is computed unclamped —
        // a bucket re-rated below its outstanding reservations has
        // `available() == 0` but genuinely negative slack, and the clamped
        // figure would wave through demands the post-release reserve must
        // then bounce.
        for (key, amount) in new_demand.iter() {
            let mgr = self.manager(key).ok_or(AdmissionError::UnknownBucket(key))?;
            let slack = mgr.capacity() - mgr.used() + old.get(key);
            if amount > slack + 1e-9 {
                return Err(AdmissionError::Rejected(BucketFull {
                    key,
                    requested: amount,
                    available: slack,
                }));
            }
        }
        self.release(id);
        match self.reserve(new_demand) {
            Ok(new_id) => Ok(new_id),
            Err(e) => {
                // Should not happen given the feasibility test; restore the
                // old reservation to keep the session alive.
                let restored =
                    self.reserve(&old).expect("restoring a just-released reservation cannot fail");
                let _ = restored;
                Err(e)
            }
        }
    }
}

impl Default for CompositeQosApi {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: u32, kind: ResourceKind) -> ResourceKey {
        ResourceKey::new(ServerId(s), kind)
    }

    fn cluster() -> CompositeQosApi {
        CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6)
    }

    fn stream_demand(server: u32, bps: f64, cpu: f64) -> ResourceVector {
        ResourceVector::new()
            .with(key(server, ResourceKind::NetBandwidth), bps)
            .with(key(server, ResourceKind::DiskBandwidth), bps)
            .with(key(server, ResourceKind::Cpu), cpu)
    }

    #[test]
    fn cluster_has_all_buckets() {
        let api = cluster();
        assert_eq!(api.buckets().count(), 12);
        assert_eq!(api.capacity(key(2, ResourceKind::NetBandwidth)), Some(3_200_000.0));
        assert_eq!(api.capacity(key(3, ResourceKind::Cpu)), None);
    }

    #[test]
    fn reserve_release_cycle() {
        let mut api = cluster();
        let d = stream_demand(0, 193_000.0, 0.04);
        let r = api.reserve(&d).unwrap();
        assert!((api.used(key(0, ResourceKind::NetBandwidth)).unwrap() - 193_000.0).abs() < 1e-6);
        assert_eq!(api.reservation_count(), 1);
        assert_eq!(api.demand_of(r), Some(&d));
        api.release(r);
        assert_eq!(api.used(key(0, ResourceKind::NetBandwidth)).unwrap(), 0.0);
        assert_eq!(api.reservation_count(), 0);
        // Idempotent.
        api.release(r);
    }

    #[test]
    fn admission_is_all_or_nothing() {
        let mut api = cluster();
        // Saturate server 0's CPU.
        let hog = ResourceVector::new().with(key(0, ResourceKind::Cpu), 1.0);
        api.reserve(&hog).unwrap();
        // A demand touching both net (fine) and cpu (full) must not leave
        // a dangling net reservation.
        let d = stream_demand(0, 100_000.0, 0.1);
        let before = api.used(key(0, ResourceKind::NetBandwidth)).unwrap();
        assert!(matches!(api.reserve(&d), Err(AdmissionError::Rejected(_))));
        assert_eq!(api.used(key(0, ResourceKind::NetBandwidth)).unwrap(), before);
    }

    #[test]
    fn unknown_bucket_rejected() {
        let mut api = cluster();
        let d = ResourceVector::new().with(key(9, ResourceKind::Cpu), 0.1);
        assert!(matches!(api.reserve(&d), Err(AdmissionError::UnknownBucket(_))));
        assert_eq!(api.max_fill_with(&d), f64::INFINITY);
    }

    #[test]
    fn max_fill_with_matches_lrb_eq1() {
        let mut api = cluster();
        // Pre-fill server 0's net to 42%.
        let pre =
            ResourceVector::new().with(key(0, ResourceKind::NetBandwidth), 0.42 * 3_200_000.0);
        api.reserve(&pre).unwrap();
        // A plan adding 10% net and 30% cpu on server 0.
        let d = ResourceVector::new()
            .with(key(0, ResourceKind::NetBandwidth), 0.10 * 3_200_000.0)
            .with(key(0, ResourceKind::Cpu), 0.30);
        let f = api.max_fill_with(&d);
        assert!((f - 0.52).abs() < 1e-9, "max fill {f}");
    }

    #[test]
    fn renegotiate_shrink_always_fits() {
        let mut api = cluster();
        let big = stream_demand(0, 300_000.0, 0.1);
        let small = stream_demand(0, 48_000.0, 0.02);
        let r = api.reserve(&big).unwrap();
        let r2 = api.renegotiate(r, &small).unwrap();
        assert!((api.used(key(0, ResourceKind::NetBandwidth)).unwrap() - 48_000.0).abs() < 1e-6);
        assert_eq!(api.reservation_count(), 1);
        assert!(api.demand_of(r2).is_some());
    }

    #[test]
    fn renegotiate_grow_uses_own_share() {
        let mut api = CompositeQosApi::new();
        api.register(key(0, ResourceKind::NetBandwidth), 100.0);
        let r = api
            .reserve(&ResourceVector::new().with(key(0, ResourceKind::NetBandwidth), 80.0))
            .unwrap();
        // 90 > available (20), but fits once our own 80 is returned.
        let r2 = api
            .renegotiate(r, &ResourceVector::new().with(key(0, ResourceKind::NetBandwidth), 90.0))
            .unwrap();
        assert!((api.used(key(0, ResourceKind::NetBandwidth)).unwrap() - 90.0).abs() < 1e-9);
        let _ = r2;
    }

    #[test]
    fn failed_renegotiation_keeps_original() {
        let mut api = CompositeQosApi::new();
        api.register(key(0, ResourceKind::NetBandwidth), 100.0);
        let r = api
            .reserve(&ResourceVector::new().with(key(0, ResourceKind::NetBandwidth), 50.0))
            .unwrap();
        let err = api
            .renegotiate(r, &ResourceVector::new().with(key(0, ResourceKind::NetBandwidth), 200.0))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::Rejected(_)));
        // Original still held.
        assert!((api.used(key(0, ResourceKind::NetBandwidth)).unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(api.reservation_count(), 1);
    }

    #[test]
    fn renegotiate_on_oversubscribed_bucket_uses_true_slack() {
        // A bucket re-rated below its outstanding reservations: two 40s on
        // a bucket crushed from 100 to 50. `available()` clamps to 0, but
        // the true slack once one 40 is returned is 50 - 80 + 40 = 10, so
        // holding at 40 or shrinking to 20 must both bounce (cleanly, with
        // the original kept), while a shrink inside the slack is honored.
        let mut api = CompositeQosApi::new();
        let k = key(0, ResourceKind::NetBandwidth);
        api.register(k, 100.0);
        let r = api.reserve(&ResourceVector::new().with(k, 40.0)).unwrap();
        let _other = api.reserve(&ResourceVector::new().with(k, 40.0)).unwrap();
        assert!(api.set_capacity(k, 50.0));
        for doomed in [40.0, 20.0] {
            let err = api.renegotiate(r, &ResourceVector::new().with(k, doomed)).unwrap_err();
            assert!(matches!(err, AdmissionError::Rejected(_)), "{doomed}: {err:?}");
            assert!((api.used(k).unwrap() - 80.0).abs() < 1e-9, "original kept");
        }
        api.renegotiate(r, &ResourceVector::new().with(k, 10.0)).unwrap();
        assert!((api.used(k).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn renegotiate_unknown_reservation() {
        let mut api = cluster();
        let err = api.renegotiate(ReservationId(42), &ResourceVector::new()).unwrap_err();
        assert!(matches!(err, AdmissionError::UnknownReservation(_)));
    }

    #[test]
    fn server_failure_cancels_touching_reservations() {
        let mut api = cluster();
        let on_0 = api.reserve(&stream_demand(0, 100_000.0, 0.05)).unwrap();
        let on_1 = api.reserve(&stream_demand(1, 100_000.0, 0.05)).unwrap();
        // A cross-server demand touching both 1 and 2.
        let cross = api
            .reserve(
                &ResourceVector::new()
                    .with(key(1, ResourceKind::DiskBandwidth), 50_000.0)
                    .with(key(2, ResourceKind::NetBandwidth), 50_000.0),
            )
            .unwrap();
        let cancelled = api.fail_server(ServerId(1));
        assert_eq!(cancelled.len(), 2);
        assert!(cancelled.contains(&on_1));
        assert!(cancelled.contains(&cross));
        // Server 0's reservation survives; server 1's buckets are gone;
        // the cross reservation's share on server 2 was released.
        assert_eq!(api.reservation_count(), 1);
        assert!(api.capacity(key(1, ResourceKind::Cpu)).is_none());
        assert_eq!(api.used(key(2, ResourceKind::NetBandwidth)).unwrap(), 0.0);
        assert!(api.demand_of(on_0).is_some());
        // New demands on the failed server are now unknown-bucket errors.
        assert!(matches!(
            api.reserve(&stream_demand(1, 1000.0, 0.01)),
            Err(AdmissionError::UnknownBucket(_))
        ));
    }

    #[test]
    fn restore_server_reopens_buckets_at_original_capacity() {
        let mut api = cluster();
        api.reserve(&stream_demand(1, 100_000.0, 0.05)).unwrap();
        api.fail_server(ServerId(1));
        assert!(api.is_failed(ServerId(1)));
        assert!(api.reserve(&stream_demand(1, 1000.0, 0.01)).is_err());
        assert!(api.restore_server(ServerId(1)));
        assert!(!api.is_failed(ServerId(1)));
        // Buckets come back at pre-failure capacity and empty: the old
        // reservation stays void.
        assert_eq!(api.capacity(key(1, ResourceKind::NetBandwidth)), Some(3_200_000.0));
        assert_eq!(api.used(key(1, ResourceKind::NetBandwidth)).unwrap(), 0.0);
        api.reserve(&stream_demand(1, 100_000.0, 0.05)).unwrap();
        // Restoring a healthy (or unknown) server is a no-op.
        assert!(!api.restore_server(ServerId(1)));
        assert!(!api.restore_server(ServerId(9)));
    }

    #[test]
    fn state_epoch_tracks_structure_not_usage() {
        let mut api = cluster();
        let e0 = api.state_epoch();
        // Reserve/release churn leaves the epoch alone.
        let r = api.reserve(&stream_demand(0, 100_000.0, 0.05)).unwrap();
        api.release(r);
        assert_eq!(api.state_epoch(), e0);
        // Failure, restore, re-rating, and registration each bump it.
        api.fail_server(ServerId(1));
        let e1 = api.state_epoch();
        assert!(e1 > e0);
        assert!(api.restore_server(ServerId(1)));
        let e2 = api.state_epoch();
        assert!(e2 > e1);
        assert!(api.set_capacity(key(0, ResourceKind::NetBandwidth), 1_600_000.0));
        let e3 = api.state_epoch();
        assert!(e3 > e2);
        // Unknown bucket: no-op, no bump.
        assert!(!api.set_capacity(key(9, ResourceKind::Cpu), 1.0));
        assert_eq!(api.state_epoch(), e3);
        // Re-asserting the current capacity is a successful no-op: the
        // fingerprint could not change, so plan caches keep their entries.
        assert!(api.set_capacity(key(0, ResourceKind::NetBandwidth), 1_600_000.0));
        assert_eq!(api.state_epoch(), e3);
        // Failing an already-failed (empty) domain keeps the epoch too.
        api.fail_server(ServerId(2));
        let e4 = api.state_epoch();
        api.fail_server(ServerId(2));
        assert_eq!(api.state_epoch(), e4);
    }

    #[test]
    fn capacity_fingerprint_tracks_capacities_not_usage() {
        let mut api = cluster();
        let f0 = api.capacity_fingerprint();
        // Reserve/release churn leaves the fingerprint alone — that
        // coarseness is what lets plan caches trust it per epoch.
        let r = api.reserve(&stream_demand(0, 100_000.0, 0.05)).unwrap();
        assert_eq!(api.capacity_fingerprint(), f0);
        api.release(r);
        assert_eq!(api.capacity_fingerprint(), f0);
        // Any capacity mutation moves it...
        assert!(api.set_capacity(key(0, ResourceKind::NetBandwidth), 1_600_000.0));
        let f1 = api.capacity_fingerprint();
        assert_ne!(f1, f0);
        // ...and it is a pure function of the capacity table: restoring
        // the original capacity restores the original fingerprint.
        assert!(api.set_capacity(key(0, ResourceKind::NetBandwidth), 3_200_000.0));
        assert_eq!(api.capacity_fingerprint(), f0);
        // Failure removes buckets from the hash; restore brings it back.
        api.fail_server(ServerId(1));
        assert_ne!(api.capacity_fingerprint(), f0);
        assert!(api.restore_server(ServerId(1)));
        assert_eq!(api.capacity_fingerprint(), f0);
    }

    #[test]
    fn set_capacity_rerates_live_bucket() {
        let mut api = cluster();
        api.reserve(&stream_demand(0, 3_000_000.0, 0.1)).unwrap();
        // Degrade the link below current usage: admission of even tiny new
        // demands on that bucket now fails, existing reservation survives.
        assert!(api.set_capacity(key(0, ResourceKind::NetBandwidth), 1_600_000.0));
        assert_eq!(api.capacity(key(0, ResourceKind::NetBandwidth)), Some(1_600_000.0));
        assert_eq!(api.reservation_count(), 1);
        assert!(matches!(
            api.reserve(&ResourceVector::new().with(key(0, ResourceKind::NetBandwidth), 1000.0)),
            Err(AdmissionError::Rejected(_))
        ));
    }

    #[test]
    fn many_sessions_until_saturation() {
        let mut api = cluster();
        // 48 KB/s DSL streams on one server's 3.2 MB/s link: exactly 66 fit.
        let d = stream_demand(0, 48_000.0, 0.005);
        let mut admitted = 0;
        while api.reserve(&d).is_ok() {
            admitted += 1;
            assert!(admitted < 1000, "admission never saturated");
        }
        assert_eq!(admitted, 66);
    }
}
