//! Per-resource managers.
//!
//! GARA "contains separate managers for individual resources (e.g. CPU,
//! network bandwidth and storage bandwidth)". A [`ResourceManager`] tracks
//! one bucket's capacity and outstanding reservations; the composite API
//! aggregates one manager per (server, kind) bucket.

use crate::resource::ResourceKey;
use std::collections::BTreeMap;

/// Identifies one reservation inside a manager (composite reservations
/// group several of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeaseId(pub u64);

/// Why a single-bucket reservation failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketFull {
    /// The saturated bucket.
    pub key: ResourceKey,
    /// Amount requested.
    pub requested: f64,
    /// Amount still available.
    pub available: f64,
}

impl std::fmt::Display for BucketFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: requested {:.3} exceeds available {:.3}",
            self.key, self.requested, self.available
        )
    }
}

impl std::error::Error for BucketFull {}

/// Tracks capacity and reservations for one resource bucket.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    key: ResourceKey,
    capacity: f64,
    used: f64,
    leases: BTreeMap<LeaseId, f64>,
    next_lease: u64,
}

impl ResourceManager {
    /// Creates a manager for `key` with the given capacity.
    pub fn new(key: ResourceKey, capacity: f64) -> Self {
        assert!(capacity > 0.0 && capacity.is_finite(), "capacity must be positive");
        ResourceManager { key, capacity, used: 0.0, leases: BTreeMap::new(), next_lease: 0 }
    }

    /// The bucket this manager owns.
    pub fn key(&self) -> ResourceKey {
        self.key
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Currently reserved amount.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Amount still reservable.
    pub fn available(&self) -> f64 {
        (self.capacity - self.used).max(0.0)
    }

    /// Fraction of capacity in use — the bucket's fill level in the LRB
    /// picture (Fig 3).
    pub fn fill(&self) -> f64 {
        self.used / self.capacity
    }

    /// Fill level if `amount` more were reserved (may exceed 1.0, which
    /// admission rejects).
    pub fn fill_with(&self, amount: f64) -> f64 {
        (self.used + amount) / self.capacity
    }

    /// Number of outstanding leases.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Whether `amount` can be reserved.
    pub fn can_reserve(&self, amount: f64) -> bool {
        amount <= self.available() + 1e-9
    }

    /// Reserves `amount`, returning a lease.
    pub fn reserve(&mut self, amount: f64) -> Result<LeaseId, BucketFull> {
        assert!(amount >= 0.0 && amount.is_finite(), "reservation must be non-negative");
        if !self.can_reserve(amount) {
            return Err(BucketFull {
                key: self.key,
                requested: amount,
                available: self.available(),
            });
        }
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        self.leases.insert(id, amount);
        self.used += amount;
        Ok(id)
    }

    /// Releases a lease. Unknown leases are a no-op (idempotent release).
    pub fn release(&mut self, lease: LeaseId) {
        if let Some(amount) = self.leases.remove(&lease) {
            self.used = (self.used - amount).max(0.0);
        }
    }

    /// Adjusts an existing lease to a new amount (renegotiation on one
    /// bucket). On failure the lease is unchanged.
    pub fn adjust(&mut self, lease: LeaseId, new_amount: f64) -> Result<(), BucketFull> {
        assert!(new_amount >= 0.0 && new_amount.is_finite(), "reservation must be non-negative");
        let Some(&old) = self.leases.get(&lease) else {
            return Err(BucketFull {
                key: self.key,
                requested: new_amount,
                available: self.available(),
            });
        };
        let delta = new_amount - old;
        if delta > self.available() + 1e-9 {
            return Err(BucketFull {
                key: self.key,
                requested: new_amount,
                available: self.available() + old,
            });
        }
        self.leases.insert(lease, new_amount);
        self.used = (self.used + delta).max(0.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;
    use quasaq_sim::ServerId;

    fn mgr(cap: f64) -> ResourceManager {
        ResourceManager::new(ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth), cap)
    }

    #[test]
    fn reserve_and_release() {
        let mut m = mgr(100.0);
        let a = m.reserve(40.0).unwrap();
        assert_eq!(m.used(), 40.0);
        assert_eq!(m.available(), 60.0);
        assert!((m.fill() - 0.4).abs() < 1e-12);
        m.release(a);
        assert_eq!(m.used(), 0.0);
        assert_eq!(m.lease_count(), 0);
    }

    #[test]
    fn over_reservation_rejected() {
        let mut m = mgr(100.0);
        m.reserve(80.0).unwrap();
        let err = m.reserve(30.0).unwrap_err();
        assert_eq!(err.requested, 30.0);
        assert!((err.available - 20.0).abs() < 1e-9);
        // State unchanged after failure.
        assert_eq!(m.used(), 80.0);
    }

    #[test]
    fn release_is_idempotent() {
        let mut m = mgr(100.0);
        let a = m.reserve(50.0).unwrap();
        m.release(a);
        m.release(a);
        assert_eq!(m.used(), 0.0);
    }

    #[test]
    fn fill_with_projects_demand() {
        let mut m = mgr(100.0);
        m.reserve(42.0).unwrap();
        assert!((m.fill_with(10.0) - 0.52).abs() < 1e-12);
        // Projection can exceed 1.0; admission is the caller's decision.
        assert!(m.fill_with(90.0) > 1.0);
    }

    #[test]
    fn adjust_up_and_down() {
        let mut m = mgr(100.0);
        let a = m.reserve(30.0).unwrap();
        m.adjust(a, 60.0).unwrap();
        assert_eq!(m.used(), 60.0);
        m.adjust(a, 10.0).unwrap();
        assert_eq!(m.used(), 10.0);
        // Adjust beyond capacity fails and leaves the lease intact.
        assert!(m.adjust(a, 200.0).is_err());
        assert_eq!(m.used(), 10.0);
    }

    #[test]
    fn adjust_unknown_lease_fails() {
        let mut m = mgr(100.0);
        assert!(m.adjust(LeaseId(99), 10.0).is_err());
    }

    #[test]
    fn zero_reservation_allowed() {
        let mut m = mgr(100.0);
        let a = m.reserve(0.0).unwrap();
        assert_eq!(m.used(), 0.0);
        m.release(a);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = mgr(0.0);
    }
}
