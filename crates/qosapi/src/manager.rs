//! Per-resource managers.
//!
//! GARA "contains separate managers for individual resources (e.g. CPU,
//! network bandwidth and storage bandwidth)". A [`ResourceManager`] tracks
//! one bucket's capacity and outstanding reservations; the composite API
//! aggregates one manager per (server, kind) bucket.

use crate::resource::ResourceKey;
use std::collections::BTreeMap;

/// Identifies one reservation inside a manager (composite reservations
/// group several of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeaseId(pub u64);

/// Why a single-bucket reservation failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketFull {
    /// The saturated bucket.
    pub key: ResourceKey,
    /// Amount requested.
    pub requested: f64,
    /// Amount still available.
    pub available: f64,
}

impl std::fmt::Display for BucketFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: requested {:.3} exceeds available {:.3}",
            self.key, self.requested, self.available
        )
    }
}

impl std::error::Error for BucketFull {}

/// Tracks capacity and reservations for one resource bucket.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    key: ResourceKey,
    capacity: f64,
    used: f64,
    leases: BTreeMap<LeaseId, f64>,
    next_lease: u64,
}

impl ResourceManager {
    /// Creates a manager for `key` with the given capacity.
    pub fn new(key: ResourceKey, capacity: f64) -> Self {
        assert!(capacity > 0.0 && capacity.is_finite(), "capacity must be positive");
        ResourceManager { key, capacity, used: 0.0, leases: BTreeMap::new(), next_lease: 0 }
    }

    /// The bucket this manager owns.
    pub fn key(&self) -> ResourceKey {
        self.key
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Currently reserved amount.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Amount still reservable.
    pub fn available(&self) -> f64 {
        (self.capacity - self.used).max(0.0)
    }

    /// Fraction of capacity in use — the bucket's fill level in the LRB
    /// picture (Fig 3).
    pub fn fill(&self) -> f64 {
        self.used / self.capacity
    }

    /// Fill level if `amount` more were reserved (may exceed 1.0, which
    /// admission rejects).
    pub fn fill_with(&self, amount: f64) -> f64 {
        (self.used + amount) / self.capacity
    }

    /// Number of outstanding leases.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Whether `amount` can be reserved. Malformed demands (negative, NaN,
    /// infinite) are never reservable — admission paths feed this straight
    /// from plan resource vectors, so garbage must bounce as a rejection
    /// rather than corrupt `used`.
    pub fn can_reserve(&self, amount: f64) -> bool {
        amount >= 0.0 && amount.is_finite() && amount <= self.available() + 1e-9
    }

    /// Reserves `amount`, returning a lease. Malformed (negative/non-finite)
    /// amounts are reported as a typed rejection, not a panic: they are
    /// reachable from the admission path via plan resource vectors.
    pub fn reserve(&mut self, amount: f64) -> Result<LeaseId, BucketFull> {
        if !self.can_reserve(amount) {
            return Err(BucketFull {
                key: self.key,
                requested: amount,
                available: self.available(),
            });
        }
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        self.leases.insert(id, amount);
        self.used += amount;
        Ok(id)
    }

    /// Releases a lease. Unknown leases are a no-op (idempotent release).
    pub fn release(&mut self, lease: LeaseId) {
        if let Some(amount) = self.leases.remove(&lease) {
            self.used = (self.used - amount).max(0.0);
        }
    }

    /// Adjusts an existing lease to a new amount (renegotiation on one
    /// bucket). On failure the lease is unchanged.
    pub fn adjust(&mut self, lease: LeaseId, new_amount: f64) -> Result<(), BucketFull> {
        if !(new_amount >= 0.0 && new_amount.is_finite()) {
            // Same rationale as `reserve`: renegotiation demands come from
            // plan arithmetic, so malformed values reject instead of panic.
            return Err(BucketFull {
                key: self.key,
                requested: new_amount,
                available: self.available(),
            });
        }
        let Some(&old) = self.leases.get(&lease) else {
            return Err(BucketFull {
                key: self.key,
                requested: new_amount,
                available: self.available(),
            });
        };
        let delta = new_amount - old;
        if delta > self.available() + 1e-9 {
            return Err(BucketFull {
                key: self.key,
                requested: new_amount,
                available: self.available() + old,
            });
        }
        self.leases.insert(lease, new_amount);
        self.used = (self.used + delta).max(0.0);
        Ok(())
    }

    /// Re-rates the bucket to a new total capacity (link degradation /
    /// recovery). Existing leases are untouched: shrinking below `used`
    /// leaves the bucket oversubscribed (`fill() > 1`), which only blocks
    /// *new* admissions — the paper's model degrades in-flight sessions via
    /// renegotiation, not forced eviction.
    ///
    /// # Panics
    /// Panics if `capacity` is non-positive or non-finite, mirroring
    /// [`ResourceManager::new`]: capacities come from operator-side
    /// topology/fault declarations, not the admission path.
    pub fn set_capacity(&mut self, capacity: f64) {
        assert!(capacity > 0.0 && capacity.is_finite(), "capacity must be positive");
        self.capacity = capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;
    use quasaq_sim::ServerId;

    fn mgr(cap: f64) -> ResourceManager {
        ResourceManager::new(ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth), cap)
    }

    #[test]
    fn reserve_and_release() {
        let mut m = mgr(100.0);
        let a = m.reserve(40.0).unwrap();
        assert_eq!(m.used(), 40.0);
        assert_eq!(m.available(), 60.0);
        assert!((m.fill() - 0.4).abs() < 1e-12);
        m.release(a);
        assert_eq!(m.used(), 0.0);
        assert_eq!(m.lease_count(), 0);
    }

    #[test]
    fn over_reservation_rejected() {
        let mut m = mgr(100.0);
        m.reserve(80.0).unwrap();
        let err = m.reserve(30.0).unwrap_err();
        assert_eq!(err.requested, 30.0);
        assert!((err.available - 20.0).abs() < 1e-9);
        // State unchanged after failure.
        assert_eq!(m.used(), 80.0);
    }

    #[test]
    fn release_is_idempotent() {
        let mut m = mgr(100.0);
        let a = m.reserve(50.0).unwrap();
        m.release(a);
        m.release(a);
        assert_eq!(m.used(), 0.0);
    }

    #[test]
    fn fill_with_projects_demand() {
        let mut m = mgr(100.0);
        m.reserve(42.0).unwrap();
        assert!((m.fill_with(10.0) - 0.52).abs() < 1e-12);
        // Projection can exceed 1.0; admission is the caller's decision.
        assert!(m.fill_with(90.0) > 1.0);
    }

    #[test]
    fn adjust_up_and_down() {
        let mut m = mgr(100.0);
        let a = m.reserve(30.0).unwrap();
        m.adjust(a, 60.0).unwrap();
        assert_eq!(m.used(), 60.0);
        m.adjust(a, 10.0).unwrap();
        assert_eq!(m.used(), 10.0);
        // Adjust beyond capacity fails and leaves the lease intact.
        assert!(m.adjust(a, 200.0).is_err());
        assert_eq!(m.used(), 10.0);
    }

    #[test]
    fn adjust_unknown_lease_fails() {
        let mut m = mgr(100.0);
        assert!(m.adjust(LeaseId(99), 10.0).is_err());
    }

    #[test]
    fn zero_reservation_allowed() {
        let mut m = mgr(100.0);
        let a = m.reserve(0.0).unwrap();
        assert_eq!(m.used(), 0.0);
        m.release(a);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = mgr(0.0);
    }

    #[test]
    fn malformed_amounts_reject_instead_of_panicking() {
        let mut m = mgr(100.0);
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(!m.can_reserve(bad));
            assert!(m.reserve(bad).is_err(), "reserve({bad}) must reject");
            assert_eq!(m.used(), 0.0, "failed reserve must not corrupt usage");
        }
        let a = m.reserve(10.0).unwrap();
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(m.adjust(a, bad).is_err(), "adjust({bad}) must reject");
            assert_eq!(m.used(), 10.0, "failed adjust must leave the lease intact");
        }
    }

    #[test]
    fn set_capacity_rerates_without_touching_leases() {
        let mut m = mgr(100.0);
        let a = m.reserve(60.0).unwrap();
        m.set_capacity(50.0);
        assert_eq!(m.capacity(), 50.0);
        assert_eq!(m.used(), 60.0);
        assert!(m.fill() > 1.0, "shrink below used oversubscribes");
        assert!(!m.can_reserve(1.0));
        m.set_capacity(200.0);
        assert!(m.can_reserve(100.0));
        m.release(a);
        assert_eq!(m.used(), 0.0);
    }
}
