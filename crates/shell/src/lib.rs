//! # quasaq-shell — the servable runtime around the sans-IO control plane
//!
//! `quasaq-service` is a pure state machine: commands in, effects out,
//! time as data. This crate is the I/O skin that makes it a server:
//!
//! * [`Shell`] — a thread-per-core `std::net` TCP front end. `threads`
//!   acceptor threads share one listener; each handles its connections'
//!   frames and forwards decoded requests over a channel to a single
//!   *brain* thread that owns the [`ControlPlane`]. One brain means one
//!   command order means one decision sequence — the same property the
//!   in-process driver gets for free, bought here with an mpsc queue
//!   instead of a lock around the plane.
//! * [`run_loopback`] — the open-loop load generator: replay a
//!   [`ThroughputConfig`]'s arrival stream against a shell socket and
//!   tally the decisions. With one connection the command order equals
//!   the driver's, so the decisions are bit-identical to
//!   `run_throughput` (the loopback e2e test and `bench --load` both
//!   stand on this).
//!
//! The wire protocol is `quasaq_service::wire`: `u32` length-prefixed
//! frames, one request per frame, one effect-list frame per request, in
//! order, per connection.

use quasaq_service::wire::{
    decode_effects, decode_request, encode_effects, encode_request, FrameBuffer, Request,
};
use quasaq_service::{AdaptPolicy, Command, ControlPlane, Effect, PlaneConfig, SessionId};
use quasaq_sim::ServerId;
use quasaq_store::AccessStats;
use quasaq_workload::{
    arrival_stream, build_core, qop_class, SystemKind, Testbed, ThroughputConfig,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// How the shell assembles its control plane.
pub struct ShellConfig {
    /// The system under service (planner + cost model).
    pub system: SystemKind,
    /// Testbed, seed, admission queue, adaptation policy — the same knobs
    /// the in-process driver takes, minus everything data-plane.
    pub throughput: ThroughputConfig,
    /// Acceptor threads sharing the listener (thread-per-core: each
    /// accepted connection is served by the thread that accepted it).
    pub threads: usize,
}

enum BrainMsg {
    /// One decoded request; the reply channel receives the encoded
    /// effect-list frame.
    Request(Request, mpsc::Sender<Vec<u8>>),
    /// Stop the brain (shutdown path).
    Stop,
}

/// A running shell: listener + acceptors + brain. Shut down explicitly
/// via [`Shell::shutdown`]; dropping without it leaves threads parked on
/// `accept`.
pub struct Shell {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    brain_tx: mpsc::Sender<BrainMsg>,
    acceptors: Vec<JoinHandle<()>>,
    brain: JoinHandle<()>,
}

impl Shell {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// starts serving.
    pub fn serve(addr: &str, cfg: ShellConfig) -> std::io::Result<Shell> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (brain_tx, brain_rx) = mpsc::channel::<BrainMsg>();

        let testbed = Testbed::shared(cfg.throughput.testbed.clone());
        let core = build_core(&testbed, cfg.system, &cfg.throughput);
        let tp = &cfg.throughput;
        let mut plane = ControlPlane::new(
            core,
            PlaneConfig {
                seed: tp.seed ^ 0x9e37_79b9,
                admission: tp.admission.clone(),
                adaptation: tp.adaptation.as_ref().map(|a| AdaptPolicy {
                    upgrade_period: a.upgrade_period,
                    max_downshifts_per_event: a.max_downshifts_per_event,
                }),
                // Renegotiation over the wire needs per-session context.
                track_ctx: true,
            },
        );

        let brain = std::thread::spawn(move || {
            let engine = &testbed.engine;
            // Session → server, maintained from effects, so a wire
            // Renegotiate can name the congestion site the plane expects.
            let mut server_of: HashMap<SessionId, ServerId> = HashMap::new();
            let mut effects: Vec<Effect> = Vec::new();
            while let Ok(BrainMsg::Request(req, reply)) = brain_rx.recv() {
                effects.clear();
                // A renegotiate for a session the plane never admitted
                // maps to no command: answer with an empty effect list
                // rather than guessing a server.
                if let Some(cmd) = to_command(req, &server_of) {
                    plane.handle_into(engine, cmd, &mut effects);
                }
                for e in &effects {
                    match e {
                        Effect::Admitted(a) => {
                            server_of.insert(a.session, a.server);
                        }
                        Effect::Renegotiated(r) => {
                            server_of.insert(r.session, r.server);
                        }
                        Effect::TornDown { session } => {
                            server_of.remove(session);
                        }
                        _ => {}
                    }
                }
                let mut frame = Vec::new();
                encode_effects(&effects, &mut frame);
                // A vanished client is its handler's problem, not ours.
                let _ = reply.send(frame);
            }
        });

        let mut acceptors = Vec::with_capacity(cfg.threads.max(1));
        for _ in 0..cfg.threads.max(1) {
            let listener = listener.try_clone()?;
            let stop = Arc::clone(&stop);
            let tx = brain_tx.clone();
            acceptors.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((conn, _)) => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            // Thread-per-core: the accepting thread serves
                            // the connection to completion, then accepts
                            // the next one.
                            let _ = serve_connection(conn, &tx, &stop);
                        }
                        Err(_) => break,
                    }
                }
            }));
        }

        Ok(Shell { addr: local, stop, brain_tx, acceptors, brain })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the acceptors, and joins the brain.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        // Unblock every acceptor's `accept` with a throwaway connection.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for a in self.acceptors {
            let _ = a.join();
        }
        let _ = self.brain_tx.send(BrainMsg::Stop);
        let _ = self.brain.join();
    }
}

/// Maps a wire request onto the command vocabulary. `None` when the
/// request references a session the shell has no server for (the plane
/// would need a congestion site to renegotiate against).
fn to_command(req: Request, server_of: &HashMap<SessionId, ServerId>) -> Option<Command> {
    Some(match req {
        Request::Admit { query, class, now } => Command::Admit {
            query,
            class,
            // Brownout needs a data-plane congestion signal; a bare
            // shell serves real clients and has none, so the front door
            // stays open. The in-process driver behaves identically
            // whenever adaptation is off, which is what the loopback
            // decision-identity test pins.
            brownout: false,
            now,
        },
        Request::Tick { now } => Command::Tick { now },
        Request::Teardown { session, abandoned, now } => {
            Command::Teardown { session, abandoned, now }
        }
        Request::Renegotiate { session, backlog, now } => {
            let server = *server_of.get(&session)?;
            Command::CongestionOnset {
                server,
                candidates: vec![quasaq_service::Candidate { session, backlog }],
                now,
            }
        }
        Request::Stats { now } => Command::Stats { now },
        Request::Finish => Command::Finish,
    })
}

/// One connection's lifetime: read frames, decode, ask the brain, write
/// the effect frame back. Returns on EOF, I/O error, protocol error, or
/// shutdown. The read timeout is what lets `Shell::shutdown` drain an
/// acceptor that is mid-connection: the read wakes periodically so the
/// stop flag gets checked even while a client sits idle.
fn serve_connection(
    mut conn: TcpStream,
    tx: &mpsc::Sender<BrainMsg>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    conn.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match conn.read(&mut buf) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(());
        }
        fb.extend(&buf[..n]);
        loop {
            let payload = match fb.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                // Protocol violation: drop the connection.
                Err(_) => return Ok(()),
            };
            let req = match decode_request(&payload) {
                Ok(r) => r,
                Err(_) => return Ok(()),
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(BrainMsg::Request(req, reply_tx)).is_err() {
                return Ok(());
            }
            let Ok(frame) = reply_rx.recv() else { return Ok(()) };
            conn.write_all(&frame)?;
        }
    }
}

/// What one loopback replay observed, accumulated from the effect
/// stream. Comparable field-for-field against an in-process
/// `ThroughputResult` for the same config.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Queries sent.
    pub queries: u64,
    /// `Admitted` effects seen.
    pub admitted: u64,
    /// `Rejected` effects seen.
    pub rejected: u64,
    /// `Queued` effects seen (front-end runs only).
    pub queued: u64,
    /// Which video landed on which server, per admission — the decision
    /// fingerprint compared against the driver's `access`.
    pub access: AccessStats,
}

/// A connected wire client: frames out, effects in, synchronously.
pub struct WireClient {
    conn: TcpStream,
    fb: FrameBuffer,
    buf: Vec<u8>,
}

impl WireClient {
    /// Connects to a shell.
    pub fn connect(addr: SocketAddr) -> std::io::Result<WireClient> {
        Ok(WireClient { conn: TcpStream::connect(addr)?, fb: FrameBuffer::new(), buf: Vec::new() })
    }

    /// Sends one request and blocks for its effect list.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Vec<Effect>> {
        self.buf.clear();
        encode_request(req, &mut self.buf);
        self.conn.write_all(&self.buf)?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.fb.next_frame() {
                Ok(Some(payload)) => {
                    return decode_effects(&payload)
                        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
            let n = self.conn.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof));
            }
            self.fb.extend(&chunk[..n]);
        }
    }
}

/// Replays `cfg`'s arrival stream against a shell socket, open-loop
/// (every admit fired as fast as the socket takes it, `now` stamped with
/// the arrival's simulated time), striped round-robin over
/// `connections` sockets. With `connections == 1` the command order is
/// exactly the in-process driver's, so the decisions are bit-identical;
/// more connections preserve per-connection FIFO but interleave at the
/// brain, which is the realistic serving regime the bench rows measure.
pub fn run_loopback(
    addr: SocketAddr,
    cfg: &ThroughputConfig,
    connections: usize,
) -> std::io::Result<LoadReport> {
    let testbed = Testbed::shared(cfg.testbed.clone());
    let queries = arrival_stream(&testbed, cfg);
    let mut clients = Vec::with_capacity(connections.max(1));
    for _ in 0..connections.max(1) {
        clients.push(WireClient::connect(addr)?);
    }
    let mut report = LoadReport::default();
    for (i, q) in queries.iter().enumerate() {
        let req = Request::Admit {
            query: quasaq_vdbms::QueuedQuery { video: q.video, qos: q.qos.clone() },
            class: qop_class(&q.qop),
            now: q.at,
        };
        let lane = i % clients.len();
        let effects = clients[lane].call(&req)?;
        report.queries += 1;
        for e in &effects {
            match e {
                Effect::Admitted(a) => {
                    report.admitted += 1;
                    report.access.record(a.video, a.server);
                }
                Effect::Rejected { .. } => report.rejected += 1,
                Effect::Queued => report.queued += 1,
                _ => {}
            }
        }
    }
    Ok(report)
}
