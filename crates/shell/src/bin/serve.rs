//! Serve the QoS control plane over TCP.
//!
//! ```text
//! cargo run --release -p quasaq-shell --bin serve -- \
//!     [--addr 127.0.0.1:7171] [--threads 4] [--system quasaq|vdbms|qosapi] \
//!     [--seed 7] [--servers 3] [--queued]
//! ```
//!
//! Builds the paper's testbed, wraps the selected system in a
//! `ControlPlane`, and serves the wire protocol until killed. Pair with
//! the `load` binary (or any `quasaq_service::wire` speaker).

use quasaq_shell::{Shell, ShellConfig};
use quasaq_workload::{AdmissionConfig, CostKind, SystemKind, TestbedConfig, ThroughputConfig};

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let threads: usize = arg(&args, "--threads").map_or(4, |v| v.parse().expect("--threads N"));
    let seed: u64 = arg(&args, "--seed").map_or(7, |v| v.parse().expect("--seed N"));
    let servers: u32 = arg(&args, "--servers").map_or(3, |v| v.parse().expect("--servers N"));
    let system = match arg(&args, "--system").as_deref() {
        None | Some("quasaq") => SystemKind::Quasaq(CostKind::Lrb),
        Some("vdbms") => SystemKind::Vdbms,
        Some("qosapi") => SystemKind::VdbmsQosApi,
        Some(other) => panic!("unknown --system {other} (quasaq|vdbms|qosapi)"),
    };
    let throughput = ThroughputConfig {
        testbed: TestbedConfig { servers, ..TestbedConfig::default() },
        seed,
        admission: args.iter().any(|a| a == "--queued").then(AdmissionConfig::default),
        ..ThroughputConfig::fig6()
    };
    let shell = Shell::serve(&addr, ShellConfig { system, throughput, threads })
        .unwrap_or_else(|e| panic!("bind {addr}: {e}"));
    println!(
        "serving {} on {} ({threads} thread(s), seed {seed}, {servers} server(s))",
        system.label(),
        shell.addr()
    );
    // Serve until killed; the brain owns all state, so there is nothing
    // to persist on the way out.
    loop {
        std::thread::park();
    }
}
