//! Open-loop load generator for a serving shell.
//!
//! ```text
//! cargo run --release -p quasaq-shell --bin load -- \
//!     --addr 127.0.0.1:7171 [--connections 4] [--seed 7] [--horizon 300] \
//!     [--servers 3]
//! ```
//!
//! Replays the same Poisson arrival stream the in-process driver would
//! generate for this seed/horizon — every query an `Admit` frame stamped
//! with its simulated arrival time — as fast as the sockets take it, and
//! reports the decision tally plus wall-clock admission throughput.
//! The `--servers` value must match the serving shell's, or the replayed
//! stream will draw from a different catalog.

use quasaq_shell::run_loopback;
use quasaq_sim::SimTime;
use quasaq_workload::{TestbedConfig, ThroughputConfig};
use std::time::Instant;

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: std::net::SocketAddr = arg(&args, "--addr")
        .unwrap_or_else(|| "127.0.0.1:7171".to_string())
        .parse()
        .expect("--addr host:port");
    let connections: usize =
        arg(&args, "--connections").map_or(1, |v| v.parse().expect("--connections N"));
    let seed: u64 = arg(&args, "--seed").map_or(7, |v| v.parse().expect("--seed N"));
    let horizon: u64 = arg(&args, "--horizon").map_or(300, |v| v.parse().expect("--horizon secs"));
    let servers: u32 = arg(&args, "--servers").map_or(3, |v| v.parse().expect("--servers N"));
    let cfg = ThroughputConfig {
        testbed: TestbedConfig { servers, ..TestbedConfig::default() },
        horizon: SimTime::from_secs(horizon),
        seed,
        ..ThroughputConfig::fig6()
    };
    let t0 = Instant::now();
    let report = run_loopback(addr, &cfg, connections).expect("loopback replay");
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{} queries over {connections} connection(s) in {secs:.3} s: \
         {} admitted, {} rejected, {} queued | {:.0} admissions/s",
        report.queries,
        report.admitted,
        report.rejected,
        report.queued,
        report.admitted as f64 / secs.max(1e-9)
    );
}
