//! Loopback end-to-end: the served control plane vs the in-process
//! driver.
//!
//! The acceptance claim of the service split: the same seed through the
//! TCP shell and through `run_throughput` yields the same decisions.
//! The config keeps the horizon under the shortest clip (30 s), so the
//! in-process driver issues exactly one `Admit` per arrival and nothing
//! else — the same command sequence a single-connection replay sends
//! over the socket — making the comparison exact: same admit/reject
//! counts and the same video→server placement multiset.

use quasaq_service::wire::Request;
use quasaq_service::Effect;
use quasaq_shell::{run_loopback, Shell, ShellConfig, WireClient};
use quasaq_sim::{SimDuration, SimTime};
use quasaq_workload::{run_throughput, AdmissionConfig, CostKind, SystemKind, ThroughputConfig};

fn e2e_cfg(seed: u64) -> ThroughputConfig {
    ThroughputConfig { horizon: SimTime::from_secs(25), seed, ..ThroughputConfig::fig6() }
}

#[test]
fn loopback_decisions_match_in_process_driver() {
    for (system, seed) in [
        (SystemKind::Quasaq(CostKind::Lrb), 7),
        (SystemKind::Quasaq(CostKind::Random), 23),
        (SystemKind::VdbmsQosApi, 7),
        (SystemKind::Vdbms, 7),
    ] {
        let cfg = e2e_cfg(seed);
        let shell = Shell::serve(
            "127.0.0.1:0",
            ShellConfig { system, throughput: cfg.clone(), threads: 2 },
        )
        .expect("bind loopback");
        let served = run_loopback(shell.addr(), &cfg, 1).expect("replay over socket");
        shell.shutdown();
        let driven = run_throughput(system, &cfg);
        assert_eq!(served.queries, driven.queries, "{}", system.label());
        assert_eq!(served.admitted, driven.admitted, "{}", system.label());
        assert_eq!(served.rejected, driven.rejected, "{}", system.label());
        // The strongest check: the exact video→server placement multiset.
        assert_eq!(served.access, driven.access, "{}", system.label());
    }
}

#[test]
fn wire_stats_and_teardown_round_trip() {
    let cfg = ThroughputConfig { admission: Some(AdmissionConfig::default()), ..e2e_cfg(7) };
    let shell = Shell::serve(
        "127.0.0.1:0",
        ShellConfig {
            system: SystemKind::Quasaq(CostKind::Lrb),
            throughput: cfg.clone(),
            threads: 1,
        },
    )
    .expect("bind loopback");
    let report = run_loopback(shell.addr(), &cfg, 1).expect("replay");
    assert!(report.admitted > 0, "25 s of arrivals must admit something");

    let mut client = WireClient::connect(shell.addr()).expect("connect");
    let now = SimTime::from_secs(25);
    let effects = client.call(&Request::Stats { now }).expect("stats");
    let [Effect::Stats(s)] = effects.as_slice() else {
        panic!("expected one stats snapshot, got {effects:?}")
    };
    assert_eq!(s.admitted, report.admitted);
    assert_eq!(s.rejected + s.waiting, report.rejected + report.queued);
    assert_eq!(s.live_sessions, report.admitted, "nothing torn down yet");

    // Tear down an admitted session and watch the live count drop.
    let first = quasaq_service::SessionId(0);
    let effects = client
        .call(&Request::Teardown {
            session: first,
            abandoned: false,
            now: now + SimDuration::from_secs(1),
        })
        .expect("teardown");
    assert!(
        matches!(effects.as_slice(), [Effect::TornDown { session }] if *session == first),
        "got {effects:?}"
    );
    let effects =
        client.call(&Request::Stats { now: now + SimDuration::from_secs(2) }).expect("stats");
    let [Effect::Stats(s2)] = effects.as_slice() else { panic!("got {effects:?}") };
    assert_eq!(s2.live_sessions, report.admitted - 1);

    // Tearing the same session down twice is a typed error, not a panic.
    let effects = client
        .call(&Request::Teardown {
            session: first,
            abandoned: false,
            now: now + SimDuration::from_secs(3),
        })
        .expect("double teardown");
    assert!(matches!(effects.as_slice(), [Effect::Error(_)]), "got {effects:?}");
    shell.shutdown();
}

#[test]
fn concurrent_connections_preserve_total_admission_accounting() {
    // Four connections racing at the brain: per-query decisions may
    // reorder relative to the serial replay, but every query still gets
    // exactly one disposition.
    let cfg = e2e_cfg(7);
    let shell = Shell::serve(
        "127.0.0.1:0",
        ShellConfig {
            system: SystemKind::Quasaq(CostKind::Lrb),
            throughput: cfg.clone(),
            threads: 4,
        },
    )
    .expect("bind loopback");
    let report = run_loopback(shell.addr(), &cfg, 4).expect("replay");
    shell.shutdown();
    assert_eq!(report.admitted + report.rejected + report.queued, report.queries);
    assert!(report.admitted > 0);
}
