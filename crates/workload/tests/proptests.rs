//! Property-based determinism checks for fault-injected runs.
//!
//! The robustness tentpole's contract: a `FaultPlan` plus a seed fully
//! determines a run, and the scenario-parallel runner reproduces the
//! serial results bit for bit — fault metrics included.

use proptest::prelude::*;
use quasaq_sim::{
    FaultKind, FaultPlan, FaultSpec, LinkModel, LinkPlan, ServerId, SimDuration, SimTime,
};
use quasaq_store::Placement;
use quasaq_workload::{
    run_throughput, run_throughput_scenarios, AdaptationConfig, AdmissionConfig, CostKind,
    SystemKind, TestbedConfig, ThroughputConfig,
};

fn faulted_cfg(seed: u64, plan: FaultPlan) -> ThroughputConfig {
    ThroughputConfig {
        horizon: SimTime::from_secs(200),
        seed,
        admission: Some(AdmissionConfig::default()),
        faults: Some(plan),
        ..ThroughputConfig::fig6()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same `FaultPlan` + seed: the parallel runner's robustness metrics
    /// are bitwise identical to the serial loop's, and every interrupted
    /// session reaches exactly one fate.
    #[test]
    fn fault_runs_are_bit_identical_serial_vs_parallel(
        seed in 0u64..1_000,
        server in 0u32..3,
        crash_at in 20u64..120,
        outage in 10u64..120,
        with_degrade in any::<bool>(),
        degrade_at in 30u64..150,
    ) {
        let mut plan = FaultPlan::crash_restart(
            ServerId(server),
            SimTime::from_secs(crash_at),
            SimTime::from_secs(crash_at + outage),
        );
        if with_degrade {
            plan.faults.push(FaultSpec {
                server: ServerId((server + 1) % 3),
                at: SimTime::from_secs(degrade_at),
                duration: SimDuration::from_secs(40),
                kind: FaultKind::LinkDegradation { factor: 0.5 },
            });
        }
        let scenarios: Vec<(SystemKind, ThroughputConfig)> = vec![
            (SystemKind::Vdbms, faulted_cfg(seed, plan.clone())),
            (SystemKind::Quasaq(CostKind::Lrb), faulted_cfg(seed, plan)),
        ];
        let serial: Vec<_> =
            scenarios.iter().map(|(s, c)| run_throughput(*s, c)).collect();
        let parallel = run_throughput_scenarios(&scenarios);
        // Full-result equality covers every series and float bit for bit;
        // the fault metrics are singled out for a readable failure.
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.faults.as_ref(), p.faults.as_ref());
        }
        prop_assert_eq!(&serial, &parallel);
        for r in &serial {
            let f = r.faults.as_ref().expect("fault injection enabled");
            prop_assert_eq!(f.interrupted, f.failed_over + f.recovered + f.dropped);
            prop_assert_eq!(r.admitted + r.rejected, r.queries);
        }
    }

    /// The sharding tentpole's contract over *random* deployments: any
    /// cluster size, placement, skew, admission mode, and fault plan
    /// stepped on a domain pool is bitwise identical to the serial run.
    #[test]
    fn sharded_stepping_is_bit_identical_for_random_configs(
        seed in 0u64..1_000,
        servers in 2u32..8,
        workers in 2usize..6,
        spread in any::<bool>(),
        skew in 0.0f64..1.5,
        queued in any::<bool>(),
        crash in any::<bool>(),
        crash_server in 0u32..8,
        crash_at in 20u64..100,
    ) {
        let faults = crash.then(|| {
            FaultPlan::crash_restart(
                ServerId(crash_server % servers),
                SimTime::from_secs(crash_at),
                SimTime::from_secs(crash_at + 40),
            )
        });
        let serial_cfg = ThroughputConfig {
            testbed: TestbedConfig {
                servers,
                placement: if spread { Placement::Spread { copies: 2 } } else { Placement::Full },
                ..TestbedConfig::default()
            },
            horizon: SimTime::from_secs(120),
            seed,
            video_skew: skew,
            admission: queued.then(AdmissionConfig::default),
            faults,
            ..ThroughputConfig::fig6()
        };
        let sharded_cfg =
            ThroughputConfig { domain_workers: workers, ..serial_cfg.clone() };
        let serial = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &serial_cfg);
        let sharded = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &sharded_cfg);
        prop_assert_eq!(serial, sharded);
    }

    /// The plan-cache tentpole's contract: turning the memoized plan
    /// cache (and its bulk-admit prefetch) on changes *nothing* about
    /// admission decisions — every series, float, and fault metric is
    /// bitwise identical to the uncached run, serial and sharded alike,
    /// across random cluster sizes, skews, bursts, admission modes, cost
    /// models, and fault plans.
    #[test]
    fn plan_cache_is_bit_identical_to_full_enumeration(
        seed in 0u64..1_000,
        servers in 2u32..8,
        workers in 2usize..6,
        skew in 0.0f64..1.5,
        burst in 1usize..6,
        queued in any::<bool>(),
        random_model in any::<bool>(),
        crash in any::<bool>(),
        crash_server in 0u32..8,
        crash_at in 20u64..100,
    ) {
        let faults = crash.then(|| {
            FaultPlan::crash_restart(
                ServerId(crash_server % servers),
                SimTime::from_secs(crash_at),
                SimTime::from_secs(crash_at + 40),
            )
        });
        let uncached_cfg = ThroughputConfig {
            testbed: TestbedConfig { servers, ..TestbedConfig::default() },
            horizon: SimTime::from_secs(120),
            seed,
            video_skew: skew,
            arrival_burst: burst,
            admission: queued.then(AdmissionConfig::default),
            faults,
            ..ThroughputConfig::fig6()
        };
        let cached_cfg = ThroughputConfig { plan_cache: true, ..uncached_cfg.clone() };
        // `Random` ranks by consuming the RNG, so equality here proves the
        // cache hit path replays the exact draw sequence of a full
        // enumeration, not just the same plan set.
        let kind = if random_model {
            SystemKind::Quasaq(CostKind::Random)
        } else {
            SystemKind::Quasaq(CostKind::Lrb)
        };
        let uncached = run_throughput(kind, &uncached_cfg);
        let cached = run_throughput(kind, &cached_cfg);
        prop_assert_eq!(&uncached, &cached);
        let uncached_sharded = run_throughput(
            kind,
            &ThroughputConfig { domain_workers: workers, ..uncached_cfg },
        );
        let cached_sharded = run_throughput(
            kind,
            &ThroughputConfig { domain_workers: workers, ..cached_cfg },
        );
        prop_assert_eq!(&uncached_sharded, &cached_sharded);
        prop_assert_eq!(&uncached, &uncached_sharded);
        prop_assert_eq!(uncached.admitted + uncached.rejected, uncached.queries);
    }

    /// The stochastic-link tentpole's contract: a sampled `LinkPlan` (any
    /// of the three capacity processes, random parameters) plus the
    /// adaptation loop is fully determined by its seed — stepping the same
    /// run on 0, 2, or 4 domain workers reproduces every series, float,
    /// and degradation counter bit for bit.
    #[test]
    fn stochastic_link_runs_are_bit_identical_across_worker_counts(
        seed in 0u64..1_000,
        link_seed in 0u64..1_000,
        servers in 2u32..6,
        model_pick in 0usize..3,
        degraded in 0.2f64..0.8,
        bad in 0.05f64..0.3,
        dwell in 20u64..90,
        queued in any::<bool>(),
    ) {
        let model = match model_pick {
            0 => LinkModel::Markov {
                factors: [1.0, degraded, bad],
                dwell: [
                    SimDuration::from_secs(dwell * 2),
                    SimDuration::from_secs(dwell),
                    SimDuration::from_secs(dwell / 2 + 1),
                ],
            },
            1 => LinkModel::Fading {
                mean: degraded,
                spread: bad,
                coherence: SimDuration::from_secs(dwell),
            },
            _ => LinkModel::Diurnal {
                trough: bad,
                period: SimDuration::from_secs(dwell * 4),
                step: SimDuration::from_secs(dwell / 2 + 1),
            },
        };
        let horizon = SimTime::from_secs(150);
        let serial_cfg = ThroughputConfig {
            testbed: TestbedConfig { servers, ..TestbedConfig::default() },
            horizon,
            seed,
            admission: queued.then(AdmissionConfig::default),
            links: Some(LinkPlan::sample(link_seed, ServerId::first_n(servers), horizon, model)),
            adaptation: Some(AdaptationConfig::default()),
            ..ThroughputConfig::fig6()
        };
        for system in [SystemKind::Vdbms, SystemKind::Quasaq(CostKind::Lrb)] {
            let serial = run_throughput(system, &serial_cfg);
            for workers in [2usize, 4] {
                let sharded_cfg =
                    ThroughputConfig { domain_workers: workers, ..serial_cfg.clone() };
                prop_assert_eq!(&serial, &run_throughput(system, &sharded_cfg));
            }
            prop_assert_eq!(serial.admitted + serial.rejected, serial.queries);
            let dm = serial.degradation.as_ref().expect("adaptation enabled");
            prop_assert!(dm.upshifts <= dm.downshifts);
        }
    }

    /// The plan cache under mid-run re-rates: every link set-point
    /// invalidates the memoized plans, so a cached run over a stochastic
    /// capacity process must still make exactly the decisions of full
    /// enumeration — serial and sharded.
    #[test]
    fn plan_cache_is_bit_identical_under_link_rerates(
        seed in 0u64..1_000,
        link_seed in 0u64..1_000,
        servers in 2u32..6,
        degraded in 0.2f64..0.8,
        dwell in 20u64..60,
        burst in 1usize..4,
        random_model in any::<bool>(),
    ) {
        let horizon = SimTime::from_secs(150);
        let uncached_cfg = ThroughputConfig {
            testbed: TestbedConfig { servers, ..TestbedConfig::default() },
            horizon,
            seed,
            arrival_burst: burst,
            links: Some(LinkPlan::sample(
                link_seed,
                ServerId::first_n(servers),
                horizon,
                LinkModel::Markov {
                    factors: [1.0, degraded, degraded / 2.0],
                    dwell: [
                        SimDuration::from_secs(dwell * 2),
                        SimDuration::from_secs(dwell),
                        SimDuration::from_secs(dwell / 2),
                    ],
                },
            )),
            adaptation: Some(AdaptationConfig::default()),
            ..ThroughputConfig::fig6()
        };
        let cached_cfg = ThroughputConfig { plan_cache: true, ..uncached_cfg.clone() };
        let kind = if random_model {
            SystemKind::Quasaq(CostKind::Random)
        } else {
            SystemKind::Quasaq(CostKind::Lrb)
        };
        let uncached = run_throughput(kind, &uncached_cfg);
        let cached = run_throughput(kind, &cached_cfg);
        prop_assert_eq!(&uncached, &cached);
        let cached_sharded = run_throughput(
            kind,
            &ThroughputConfig { domain_workers: 3, ..cached_cfg },
        );
        prop_assert_eq!(&uncached, &cached_sharded);
    }
}
