//! Differential proptests: the rewired control-plane driver vs the
//! frozen pre-refactor loop.
//!
//! `support/legacy.rs` is the in-process event loop exactly as it stood
//! before admission, brownout, failover, and renegotiation moved into the
//! sans-IO `quasaq-service` crate. These tests drive random
//! traffic/fault/link/adaptation configs through both and require
//! bit-identical `ThroughputResult`s — every series sample, float, and
//! counter — serial and sharded. Any divergence means the command/effect
//! split changed a decision or an RNG draw.

#[path = "support/legacy.rs"]
mod legacy;

use legacy::legacy_run_throughput;
use proptest::prelude::*;
use quasaq_sim::{FaultPlan, LinkModel, LinkPlan, ServerId, SimDuration, SimTime};
use quasaq_workload::{
    run_throughput, AdaptationConfig, AdmissionConfig, CostKind, SystemKind, TestbedConfig,
    ThroughputConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random load shapes (skew, bursts, arrival period, queueing, plan
    /// cache) across all three systems: the control-plane driver equals
    /// the legacy loop bit for bit.
    #[test]
    fn control_plane_driver_matches_legacy_loop(
        seed in 0u64..1_000,
        servers in 2u32..6,
        skew in 0.0f64..1.5,
        burst in 1usize..5,
        queued in any::<bool>(),
        cache in any::<bool>(),
        system_pick in 0usize..4,
    ) {
        let system = match system_pick {
            0 => SystemKind::Vdbms,
            1 => SystemKind::VdbmsQosApi,
            2 => SystemKind::Quasaq(CostKind::Lrb),
            _ => SystemKind::Quasaq(CostKind::Random),
        };
        let cfg = ThroughputConfig {
            testbed: TestbedConfig { servers, ..TestbedConfig::default() },
            horizon: SimTime::from_secs(150),
            seed,
            video_skew: skew,
            arrival_burst: burst,
            admission: queued.then(AdmissionConfig::default),
            plan_cache: cache,
            ..ThroughputConfig::fig6()
        };
        prop_assert_eq!(legacy_run_throughput(system, &cfg), run_throughput(system, &cfg));
    }

    /// Random crash/restart plans over the queued front end: failover,
    /// requeue, and recovery decisions (and every fault counter) match
    /// the legacy loop, serial and sharded.
    #[test]
    fn faulted_runs_match_legacy_loop(
        seed in 0u64..1_000,
        servers in 2u32..5,
        crash_server in 0u32..5,
        crash_at in 20u64..100,
        outage in 10u64..80,
        queued in any::<bool>(),
        workers in 0usize..4,
    ) {
        let cfg = ThroughputConfig {
            testbed: TestbedConfig { servers, ..TestbedConfig::default() },
            horizon: SimTime::from_secs(150),
            seed,
            admission: queued.then(AdmissionConfig::default),
            faults: Some(FaultPlan::crash_restart(
                ServerId(crash_server % servers),
                SimTime::from_secs(crash_at),
                SimTime::from_secs(crash_at + outage),
            )),
            domain_workers: workers,
            ..ThroughputConfig::fig6()
        };
        for system in [SystemKind::Vdbms, SystemKind::Quasaq(CostKind::Lrb)] {
            let old = legacy_run_throughput(system, &cfg);
            let new = run_throughput(system, &cfg);
            prop_assert_eq!(old.faults.as_ref(), new.faults.as_ref());
            prop_assert_eq!(old, new);
        }
    }

    /// Random stochastic link processes with the full adaptation stack
    /// (renegotiation, upshift hysteresis, brownout shedding): the
    /// control-plane decisions — who gets renegotiated, to what, when —
    /// match the legacy loop draw for draw.
    #[test]
    fn adaptive_runs_match_legacy_loop(
        seed in 0u64..1_000,
        link_seed in 0u64..1_000,
        servers in 2u32..5,
        degraded in 0.2f64..0.7,
        dwell in 20u64..70,
        queued in any::<bool>(),
        fading in any::<bool>(),
    ) {
        let horizon = SimTime::from_secs(150);
        let model = if fading {
            LinkModel::Fading {
                mean: degraded,
                spread: 0.15,
                coherence: SimDuration::from_secs(dwell),
            }
        } else {
            LinkModel::Markov {
                factors: [1.0, degraded, degraded / 2.0],
                dwell: [
                    SimDuration::from_secs(dwell * 2),
                    SimDuration::from_secs(dwell),
                    SimDuration::from_secs(dwell / 2 + 1),
                ],
            }
        };
        let cfg = ThroughputConfig {
            testbed: TestbedConfig { servers, ..TestbedConfig::default() },
            horizon,
            seed,
            admission: queued.then(AdmissionConfig::default),
            links: Some(LinkPlan::sample(link_seed, ServerId::first_n(servers), horizon, model)),
            adaptation: Some(AdaptationConfig::default()),
            ..ThroughputConfig::fig6()
        };
        for system in [SystemKind::Vdbms, SystemKind::Quasaq(CostKind::Lrb)] {
            let old = legacy_run_throughput(system, &cfg);
            let new = run_throughput(system, &cfg);
            prop_assert_eq!(old.degradation.as_ref(), new.degradation.as_ref());
            prop_assert_eq!(old, new);
        }
    }
}
