//! The pre-service-refactor throughput driver, frozen verbatim as a
//! differential-test oracle.
//!
//! This is the in-process event loop exactly as it stood before the QoS
//! control plane moved into the sans-IO `quasaq-service` crate: admission,
//! brownout, failover, and renegotiation all inlined against the system
//! state. The differential proptests drive random traffic/fault/link
//! configs through both this loop and the rewired driver and require
//! bit-identical `ThroughputResult`s — the same role `sim`'s
//! `support/old_link.rs` plays for the flow arena.
//!
//! Frozen code: edits here would defeat the oracle's purpose.

use quasaq_core::{
    AdmittedPlan, PlanExecutor, PlanRequest, QopSecurity, QosWeights, QualityManager, Rejection,
    UserProfile, UtilityGain,
};
use quasaq_media::QosRange;
use quasaq_qosapi::{CompositeQosApi, ReservationId, ResourceKey, ResourceKind, ResourceVector};
use quasaq_sim::link::SharePolicy;
use quasaq_sim::{
    FaultEvent, FaultInjector, FaultKind, LevelTracker, LinkInjector, RateCounter, Rng, Series,
    ServerId, SimDuration, SimTime,
};
use quasaq_store::AccessStats;
use quasaq_stream::{CongestionEdge, FluidEngine, FluidSessionId};
use quasaq_vdbms::{BaselineKind, BaselinePlanner, QueuedQuery};
use quasaq_workload::admission::{brownout_action, AdmissionQueue, BrownoutAction, Waiting};
use quasaq_workload::parallel::DomainPool;
use quasaq_workload::testbed::{Testbed, TestbedConfig};
use quasaq_workload::traffic::{generate_queries, qop_class, TrafficConfig};
use quasaq_workload::{
    AdaptationConfig, DegradationMetrics, FaultMetrics, SystemKind, ThroughputConfig,
    ThroughputResult,
};
use std::collections::{BTreeSet, HashMap};

// One instance per run, stack-allocated in `run_throughput`; the size gap
// (QualityManager grew a plan cache) doesn't justify a Box deref on the
// per-query admission path.
#[allow(clippy::large_enum_variant)]
enum SystemState {
    Plain { planner: BaselinePlanner },
    QosApi { planner: BaselinePlanner, api: CompositeQosApi, headroom: f64 },
    Quasaq { manager: QualityManager, executor: PlanExecutor },
}

/// Dense per-session side table indexed by [`FluidSessionId`] (the fluid
/// engine allocates ids contiguously from 0, so a `Vec` replaces the old
/// session-keyed hash maps on the admission/completion hot path).
struct PerSession<T>(Vec<Option<T>>);

impl<T> PerSession<T> {
    fn new() -> Self {
        PerSession(Vec::new())
    }

    fn insert(&mut self, id: FluidSessionId, value: T) {
        if id.0 >= self.0.len() {
            self.0.resize_with(id.0 + 1, || None);
        }
        self.0[id.0] = Some(value);
    }

    fn remove(&mut self, id: FluidSessionId) -> Option<T> {
        self.0.get_mut(id.0).and_then(Option::take)
    }

    fn get(&self, id: FluidSessionId) -> Option<&T> {
        self.0.get(id.0).and_then(Option::as_ref)
    }

    fn get_mut(&mut self, id: FluidSessionId) -> Option<&mut T> {
        self.0.get_mut(id.0).and_then(Option::as_mut)
    }
}

/// Runs one system against the shared query stream on the (process-wide,
/// immutably shared) testbed for `cfg.testbed`. Runs never mutate the
/// testbed, so N system-variants over one deployment pay for catalog
/// generation once; callers that *do* mutate the replica layout build
/// their own testbed and use [`run_throughput_on`].
pub fn legacy_run_throughput(system: SystemKind, cfg: &ThroughputConfig) -> ThroughputResult {
    let testbed = Testbed::shared(cfg.testbed.clone());
    legacy_run_throughput_on(&testbed, system, cfg)
}

/// Runs one system against the query stream on an existing testbed (so
/// callers can mutate the replica layout between runs, e.g. for the
/// online-migration extension).
pub fn legacy_run_throughput_on(
    testbed: &Testbed,
    system: SystemKind,
    cfg: &ThroughputConfig,
) -> ThroughputResult {
    let mut traffic = TrafficConfig::paper(testbed.library.len(), cfg.horizon);
    traffic.video_skew = cfg.video_skew;
    traffic.qop_mix = cfg.qop_mix;
    if let Some(period) = cfg.arrival_period {
        traffic.mean_interarrival = period;
    }
    traffic.burst = cfg.arrival_burst.max(1);
    let queries = generate_queries(cfg.seed ^ 0x51ab_17e5, &traffic);
    let mut rng = Rng::new(cfg.seed ^ 0x9e37_79b9);

    let mut state = match system {
        SystemKind::Vdbms => {
            SystemState::Plain { planner: BaselinePlanner::new(BaselineKind::Plain) }
        }
        SystemKind::VdbmsQosApi => SystemState::QosApi {
            planner: BaselinePlanner::new(BaselineKind::WithQosApi),
            api: testbed.qos_api(),
            headroom: cfg.testbed.cost.reservation_headroom,
        },
        SystemKind::Quasaq(kind) => {
            let mut manager = testbed.quality_manager_with(
                kind,
                quasaq_core::GeneratorConfig {
                    cost: cfg.testbed.cost,
                    allow_remote: !cfg.local_plans_only,
                    ..quasaq_core::GeneratorConfig::default()
                },
            );
            manager.set_plan_caching(cfg.plan_cache);
            SystemState::Quasaq {
                manager,
                executor: PlanExecutor { cost: cfg.testbed.cost, ..PlanExecutor::default() },
            }
        }
    };

    // All systems pace sessions at their stream rate on fair-share links;
    // reservation-based systems enforce admission in the QoS API, so the
    // link never oversubscribes for them.
    let mut fluid =
        FluidEngine::new(testbed.servers(), SharePolicy::FairShare, cfg.testbed.link_capacity_bps);

    // Within-run parallelism: phase A of every advance (per-domain fluid
    // stepping) runs on the pool; the merge stays serial, so the event
    // order — and every downstream float — is identical to a serial run.
    let pool = (cfg.domain_workers > 1).then(|| DomainPool::new(cfg.domain_workers));
    macro_rules! advance_fluid {
        ($t:expr) => {
            match &pool {
                Some(p) => fluid.advance_domains($t, p),
                None => fluid.advance_to($t),
            }
        };
    }

    let mut queue = cfg.admission.clone().map(AdmissionQueue::new);
    let patience = cfg.admission.as_ref().map(|a| a.patience);
    // Mid-stream give-up deadlines, ordered for the event loop plus a
    // reverse index for completion-time removal. Both stay empty when the
    // front end is disabled, so the legacy event sequence is untouched.
    let mut deadlines: BTreeSet<(SimTime, FluidSessionId)> = BTreeSet::new();
    let mut deadline_of: PerSession<SimTime> = PerSession::new();

    // Fault injection. The timeline is empty when `cfg.faults` is `None`,
    // so the legacy event sequence — and every RNG draw — is untouched.
    // The testbed itself is immutable and shared across runs; all fault
    // state (who is down, which reservations died, the degraded
    // capacities inside this run's own fluid engine) lives here.
    let fault_plan = cfg.faults.clone().unwrap_or_default();
    let mut injector = FaultInjector::new(&fault_plan);
    let faults_on = cfg.faults.is_some();
    let failover_profile = cfg
        .admission
        .as_ref()
        .map(|a| a.profile.clone())
        .unwrap_or_else(|| UserProfile::new("failover"));
    let mut fm = FaultMetrics::default();
    // Per-session request context, kept only under fault injection so a
    // crash can re-plan the displaced sessions.
    let mut ctxs: PerSession<SessionCtx> = PerSession::new();
    let mut down: BTreeSet<ServerId> = BTreeSet::new();
    // Overlapping windows compose: crashes nest by depth, capacity
    // factors multiply (in stable order, so the float product is a pure
    // function of the plan).
    let mut crash_depth: HashMap<ServerId, u32> = HashMap::new();
    let mut link_factors: HashMap<ServerId, Vec<f64>> = HashMap::new();
    let mut disk_factors: HashMap<ServerId, Vec<f64>> = HashMap::new();
    let mut impaired: BTreeSet<ServerId> = BTreeSet::new();
    let mut violation_t = SimTime::ZERO;

    // Stochastic link dynamics: a (time, seq)-ordered set-point timeline,
    // one dynamic factor per server composed into the same effective
    // capacity the fault windows feed. Empty when `cfg.links` is `None`,
    // so the legacy event sequence is untouched.
    let link_plan = cfg.links.clone().unwrap_or_default();
    let mut link_injector = LinkInjector::new(&link_plan);
    let links_on = cfg.links.is_some();
    let mut dyn_factors: HashMap<ServerId, f64> = HashMap::new();
    // QoS-violation exposure is accounted whenever anything can degrade
    // capacity mid-run.
    let watch_capacity = faults_on || links_on;

    // The congestion-adaptation loop.
    let adapt = cfg.adaptation.clone();
    let adapt_on = adapt.is_some();
    if let Some(a) = &adapt {
        fluid.enable_congestion(a.congestion);
    }
    let mut dm = DegradationMetrics::default();
    let mut last_upshift: HashMap<ServerId, SimTime> = HashMap::new();
    let mut congested_t = SimTime::ZERO;
    // Session contexts are needed by both the crash-failover path and the
    // adaptation loop.
    let track_ctx = faults_on || adapt_on;
    let num_servers = cfg.testbed.servers as usize;

    let mut reservations: PerSession<ReservationId> = PerSession::new();
    let mut outstanding = LevelTracker::new();
    let mut completions = RateCounter::new(SimDuration::from_secs(60));
    let mut rejects = Series::new();
    let mut rejected = 0u64;
    let mut admitted = 0u64;
    let mut completed = 0u64;
    let mut access = AccessStats::new();
    let mut utility_sum = 0.0f64;
    let mut utility_n = 0u64;

    let mut qi = 0usize;
    loop {
        let tq = queries.get(qi).map(|q| q.at);
        let tf = fluid.next_event().filter(|&t| t <= cfg.horizon);
        let tr = queue.as_ref().and_then(|q| q.next_ready()).filter(|&t| t <= cfg.horizon);
        let ta = deadlines.iter().next().map(|&(t, _)| t).filter(|&t| t <= cfg.horizon);
        let tx = injector.next_at().filter(|&t| t <= cfg.horizon);
        let tl = link_injector.next_at().filter(|&t| t <= cfg.horizon);
        let tc = fluid.congestion_next_at().filter(|&t| t <= cfg.horizon);
        let Some(t) = [tq, tf, tr, ta, tx, tl, tc].into_iter().flatten().min() else { break };
        if t > cfg.horizon {
            break;
        }
        // The active set only changes at processed instants, so the
        // violation exposure over [violation_t, t] is exact.
        if watch_capacity && t > violation_t {
            for &s in &impaired {
                fm.qos_violation_secs +=
                    fluid.active_on(s) as f64 * (t - violation_t).as_secs_f64();
            }
            violation_t = t;
        }
        // Same argument for congestion exposure: the congested set only
        // flips inside `poll_congestion`, which runs at processed
        // instants.
        if adapt_on && t > congested_t {
            dm.congested_secs += fluid.congested_servers() as f64 * (t - congested_t).as_secs_f64();
            congested_t = t;
        }
        advance_fluid!(t);
        handle_done(
            fluid.drain_completions(),
            &mut reservations,
            &mut state,
            &mut outstanding,
            &mut completions,
            &mut completed,
            &mut deadlines,
            &mut deadline_of,
            &mut ctxs,
        );
        // Mid-stream patience: cancel sessions that overran their nominal
        // duration by more than the patience window. Completions at the
        // same instant were drained first, so finishing exactly on the
        // deadline counts as done.
        while let Some(&(dt, sid)) = deadlines.iter().next() {
            if dt > t {
                break;
            }
            deadlines.remove(&(dt, sid));
            deadline_of.remove(sid);
            fluid.cancel_session(t, sid);
            outstanding.adjust(t, -1);
            if let Some(res) = reservations.remove(sid) {
                release(&mut state, res);
            }
            ctxs.remove(sid);
            queue
                .as_mut()
                .expect("deadlines only exist with admission enabled")
                .record_stream_abandoned(t);
        }
        // Fault edges due now fire after completions and patience (a
        // session finishing at the crash instant made it) and before
        // retries and the new arrival (which must see the post-crash
        // world).
        while let Some(ev) = injector.pop_due(t) {
            match ev {
                FaultEvent::Begin(spec) => match spec.kind {
                    FaultKind::ServerCrash => {
                        let depth = crash_depth.entry(spec.server).or_insert(0);
                        *depth += 1;
                        if *depth > 1 {
                            continue;
                        }
                        down.insert(spec.server);
                        // Bulk-release every reservation on the dead
                        // server so new admissions route around it...
                        fail_site(&mut state, spec.server);
                        // ...then displace its in-flight sessions and try
                        // to fail each one over.
                        for (sid, remaining) in fluid.fail_server(t, spec.server) {
                            outstanding.adjust(t, -1);
                            fm.interrupted += 1;
                            if let Some(dl) = deadline_of.remove(sid) {
                                deadlines.remove(&(dl, sid));
                            }
                            // The site failure above already cancelled the
                            // dead server's reservations; release is
                            // idempotent, so dropping the id is enough.
                            reservations.remove(sid);
                            let ctx = ctxs.remove(sid).expect("fault runs track context");
                            let frac = (remaining / ctx.total_bytes.max(1) as f64).clamp(0.0, 1.0);
                            // Walk the QoP ladder down until a survivor
                            // admits the remaining bytes.
                            let mut request = ctx.query;
                            let mut steps = 0u32;
                            let mut last_err = Rejection::AdmissionFailed;
                            let placed = loop {
                                match admit(
                                    &mut state,
                                    testbed,
                                    &request,
                                    &mut fluid,
                                    &mut rng,
                                    t,
                                    Some(frac),
                                    &down,
                                ) {
                                    Ok(sess) => break Some(sess),
                                    Err(why) => {
                                        last_err = why;
                                        match failover_profile
                                            .degrade_options(&request.qos)
                                            .into_iter()
                                            .next()
                                        {
                                            Some(next) => {
                                                request.qos = next;
                                                steps += 1;
                                            }
                                            None => break None,
                                        }
                                    }
                                }
                            };
                            match placed {
                                Some(sess) => {
                                    fm.failed_over += 1;
                                    if steps > 0 {
                                        fm.failover_degraded += 1;
                                    }
                                    fm.recovery.push(0.0);
                                    outstanding.adjust(t, 1);
                                    access.record(request.video, sess.server);
                                    if let Some(u) = sess.utility {
                                        utility_sum += u;
                                        utility_n += 1;
                                    }
                                    if let Some(res) = sess.reservation {
                                        reservations.insert(sess.sid, res);
                                    }
                                    if let Some(p) = patience {
                                        let dl = t + sess.nominal + p;
                                        deadlines.insert((dl, sess.sid));
                                        deadline_of.insert(sess.sid, dl);
                                    }
                                    ctxs.insert(
                                        sess.sid,
                                        SessionCtx::new(request, sess.bytes, sess.plan),
                                    );
                                }
                                None => match queue.as_mut() {
                                    Some(qu) => {
                                        let w = Waiting {
                                            query: request,
                                            arrival: t,
                                            attempts: 1,
                                            interrupted: Some(t),
                                        };
                                        if qu.admit_failure(t, w, &last_err).is_rejection() {
                                            fm.dropped += 1;
                                        } else {
                                            fm.requeued += 1;
                                        }
                                    }
                                    None => fm.dropped += 1,
                                },
                            }
                        }
                    }
                    FaultKind::LinkDegradation { factor } => {
                        link_factors.entry(spec.server).or_default().push(factor);
                        apply_capacity(
                            &mut fluid,
                            &mut impaired,
                            &link_factors,
                            &disk_factors,
                            &dyn_factors,
                            &cfg.testbed,
                            t,
                            spec.server,
                        );
                    }
                    FaultKind::DiskSlowdown { factor } => {
                        disk_factors.entry(spec.server).or_default().push(factor);
                        apply_capacity(
                            &mut fluid,
                            &mut impaired,
                            &link_factors,
                            &disk_factors,
                            &dyn_factors,
                            &cfg.testbed,
                            t,
                            spec.server,
                        );
                    }
                },
                FaultEvent::End(spec) => match spec.kind {
                    FaultKind::ServerCrash => {
                        let depth = crash_depth.get_mut(&spec.server).expect("crash began");
                        *depth -= 1;
                        if *depth == 0 {
                            down.remove(&spec.server);
                            restore_site(&mut state, spec.server);
                        }
                    }
                    FaultKind::LinkDegradation { factor } => {
                        remove_factor(&mut link_factors, spec.server, factor);
                        apply_capacity(
                            &mut fluid,
                            &mut impaired,
                            &link_factors,
                            &disk_factors,
                            &dyn_factors,
                            &cfg.testbed,
                            t,
                            spec.server,
                        );
                    }
                    FaultKind::DiskSlowdown { factor } => {
                        remove_factor(&mut disk_factors, spec.server, factor);
                        apply_capacity(
                            &mut fluid,
                            &mut impaired,
                            &link_factors,
                            &disk_factors,
                            &dyn_factors,
                            &cfg.testbed,
                            t,
                            spec.server,
                        );
                    }
                },
            }
        }
        // Link set-points due now land after fault edges (a set-point and
        // a fault window at one instant compose in plan order) and before
        // retries and arrivals, which must see the re-rated world. Unlike
        // fault windows, set-points also move the admission view: the
        // reservation systems should plan against the capacity the
        // network actually has.
        while let Some(spec) = link_injector.pop_due(t) {
            dyn_factors.insert(spec.server, spec.factor);
            let net = apply_capacity(
                &mut fluid,
                &mut impaired,
                &link_factors,
                &disk_factors,
                &dyn_factors,
                &cfg.testbed,
                t,
                spec.server,
            );
            let key = ResourceKey::new(spec.server, ResourceKind::NetBandwidth);
            match &mut state {
                SystemState::QosApi { api, .. } => {
                    api.set_capacity(key, net);
                }
                SystemState::Quasaq { manager, .. } => {
                    manager.set_capacity(key, net);
                }
                SystemState::Plain { .. } => {}
            }
        }
        // Retries due now run before the new arrival: they have waited
        // longer.
        if let Some(qu) = queue.as_mut() {
            while let Some(w) = qu.pop_due(t) {
                match admit(&mut state, testbed, &w.query, &mut fluid, &mut rng, t, None, &down) {
                    Ok(sess) => {
                        match w.interrupted {
                            Some(it) => {
                                // A displaced session re-serviced from the
                                // queue was admitted once already: count
                                // its recovery, not a second admission.
                                fm.recovered += 1;
                                fm.recovery.push((t - it).as_secs_f64());
                            }
                            None => {
                                admitted += 1;
                                qu.record_admitted(t, w.arrival);
                            }
                        }
                        outstanding.adjust(t, 1);
                        access.record(w.query.video, sess.server);
                        if let Some(u) = sess.utility {
                            utility_sum += u;
                            utility_n += 1;
                        }
                        if let Some(res) = sess.reservation {
                            reservations.insert(sess.sid, res);
                        }
                        if let Some(p) = patience {
                            let dl = t + sess.nominal + p;
                            deadlines.insert((dl, sess.sid));
                            deadline_of.insert(sess.sid, dl);
                        }
                        if track_ctx {
                            ctxs.insert(sess.sid, SessionCtx::new(w.query, sess.bytes, sess.plan));
                        }
                    }
                    Err(why) => {
                        let was_displaced = w.interrupted.is_some();
                        if qu.admit_failure(t, w, &why).is_rejection() {
                            if was_displaced {
                                fm.dropped += 1;
                            } else {
                                rejected += 1;
                                rejects.push(t, rejected as f64);
                            }
                        }
                    }
                }
            }
        }
        if tq == Some(t) {
            // Every query arriving at this exact instant forms one batch (a
            // flash-crowd burst under `arrival_burst > 1`; always a single
            // query for Poisson arrivals). With the plan cache on, the
            // bulk-admit path warms the cache for the whole batch first —
            // requests sorted by cache key, each distinct enumeration done
            // once — before the queries admit sequentially in arrival
            // order. Prefetching consumes no RNG and reserves nothing, so
            // the decisions are bit-identical to cold processing.
            let batch_end = qi + queries[qi..].iter().take_while(|q| q.at == t).count();
            if batch_end - qi > 1 {
                if let SystemState::Quasaq { manager, .. } = &mut state {
                    if manager.plan_caching() {
                        let reqs: Vec<PlanRequest> = queries[qi..batch_end]
                            .iter()
                            .map(|q| PlanRequest {
                                video: q.video,
                                qos: q.qos.clone(),
                                security: QopSecurity::Open,
                            })
                            .collect();
                        manager.prefetch_plans(&testbed.engine, &reqs);
                    }
                }
            }
            // Brownout: once enough of the cluster sits congested, the
            // front door sheds by service class — Economy requests are
            // refused outright, richer requests are admitted one ladder
            // step down or refused, and nothing queues (a browned-out
            // system must shed load now, not promise it later). The
            // congested set is frozen for the whole instant (it only
            // moves in the end-of-instant poll), so every query in a
            // burst sees the same policy.
            let brownout_now = adapt.as_ref().is_some_and(|a| {
                let congested = fluid.congested_servers();
                congested > 0 && congested as f64 >= a.brownout_ratio * num_servers as f64
            });
            while qi < batch_end {
                let q = &queries[qi];
                qi += 1;
                let mut request = QueuedQuery { video: q.video, qos: q.qos.clone() };
                let mut via_brownout = false;
                if brownout_now {
                    match brownout_action(qop_class(&q.qop)) {
                        BrownoutAction::Reject => {
                            dm.brownout_rejected += 1;
                            rejected += 1;
                            rejects.push(t, rejected as f64);
                            continue;
                        }
                        BrownoutAction::DegradeThenReject => {
                            if let Some(next) =
                                failover_profile.degrade_options(&request.qos).into_iter().next()
                            {
                                request.qos = next;
                            }
                            via_brownout = true;
                        }
                    }
                }
                match admit(&mut state, testbed, &request, &mut fluid, &mut rng, t, None, &down) {
                    Ok(sess) => {
                        if via_brownout {
                            dm.brownout_degraded += 1;
                        }
                        admitted += 1;
                        outstanding.adjust(t, 1);
                        access.record(q.video, sess.server);
                        if let Some(u) = sess.utility {
                            utility_sum += u;
                            utility_n += 1;
                        }
                        if let Some(res) = sess.reservation {
                            reservations.insert(sess.sid, res);
                        }
                        if let Some(qu) = queue.as_mut() {
                            qu.record_admitted(t, t);
                        }
                        if let Some(p) = patience {
                            let dl = t + sess.nominal + p;
                            deadlines.insert((dl, sess.sid));
                            deadline_of.insert(sess.sid, dl);
                        }
                        if track_ctx {
                            ctxs.insert(sess.sid, SessionCtx::new(request, sess.bytes, sess.plan));
                        }
                    }
                    Err(why) => {
                        if via_brownout {
                            // Degrade-then-reject: even the degraded form
                            // was infeasible, and a browned-out system
                            // does not queue.
                            dm.brownout_rejected += 1;
                            rejected += 1;
                            rejects.push(t, rejected as f64);
                            continue;
                        }
                        match queue.as_mut() {
                            Some(qu) => {
                                let w = Waiting {
                                    query: request,
                                    arrival: t,
                                    attempts: 1,
                                    interrupted: None,
                                };
                                if qu.admit_failure(t, w, &why).is_rejection() {
                                    rejected += 1;
                                    rejects.push(t, rejected as f64);
                                }
                            }
                            None => {
                                rejected += 1;
                                rejects.push(t, rejected as f64);
                            }
                        }
                    }
                }
            }
        }
        // End-of-instant congestion poll: demand ratios only move at
        // processed instants (session adds, completions, cancellations,
        // re-rates all happen above), so polling here sees every edge
        // exactly when it happens; the `tc` time source wakes the loop
        // for pure dwell expiries. Runs after the arrivals so a burst
        // that congests a server starts its dwell clock at this instant.
        if let Some(a) = &adapt {
            run_adaptation(
                t,
                a,
                &mut state,
                testbed,
                &mut fluid,
                &mut rng,
                &mut ctxs,
                &mut reservations,
                &mut deadlines,
                &mut deadline_of,
                patience,
                &mut access,
                &mut dm,
                &mut last_upshift,
                &failover_profile,
                &link_factors,
                &disk_factors,
                &dyn_factors,
            );
        }
    }
    if watch_capacity && cfg.horizon > violation_t {
        for &s in &impaired {
            fm.qos_violation_secs +=
                fluid.active_on(s) as f64 * (cfg.horizon - violation_t).as_secs_f64();
        }
    }
    if adapt_on && cfg.horizon > congested_t {
        dm.congested_secs +=
            fluid.congested_servers() as f64 * (cfg.horizon - congested_t).as_secs_f64();
    }
    advance_fluid!(cfg.horizon);
    handle_done(
        fluid.drain_completions(),
        &mut reservations,
        &mut state,
        &mut outstanding,
        &mut completions,
        &mut completed,
        &mut deadlines,
        &mut deadline_of,
        &mut ctxs,
    );
    // Whoever is still waiting never got served: fresh queries fold into
    // the rejected count so `admitted + rejected == queries` holds;
    // displaced sessions still waiting are lost to the fault accounting.
    if let Some(qu) = queue.as_mut() {
        let (pending, displaced_pending) = qu.finish();
        if pending > 0 {
            rejected += pending;
            rejects.push(cfg.horizon, rejected as f64);
        }
        fm.dropped += displaced_pending;
    }

    // Env-gated diagnostic (EXPERIMENTS.md, plan-cache study): end-of-run
    // cache counters on stderr, leaving the returned result untouched.
    if std::env::var_os("QUASAQ_CACHE_DEBUG").is_some() {
        if let SystemState::Quasaq { manager, .. } = &state {
            if let Some(s) = manager.plan_cache_stats() {
                eprintln!("cache stats: {s:?}");
            }
        }
    }
    ThroughputResult {
        label: system.label(),
        outstanding: outstanding.sample(cfg.sample_step, cfg.horizon),
        completions_per_min: completions,
        rejects,
        queries: queries.len() as u64,
        admitted,
        rejected,
        completed,
        access,
        mean_utility: (utility_n > 0).then(|| utility_sum / utility_n as f64),
        queue: queue.map(AdmissionQueue::into_metrics),
        faults: watch_capacity.then_some(fm),
        degradation: adapt_on.then_some(dm),
    }
}

/// What the driver must remember about a live session to fail it over
/// after a crash or renegotiate it under congestion (tracked only when
/// fault injection or adaptation is on).
struct SessionCtx {
    query: QueuedQuery,
    total_bytes: u64,
    /// The admitted plan (QuaSAQ systems only): what a mid-stream
    /// renegotiation swaps out. Baselines have no plan machinery, so
    /// their sessions never re-rate.
    plan: Option<AdmittedPlan>,
    /// The QoS the client originally asked for — the upshift ceiling.
    orig_qos: QosRange,
    /// Last upshift instant (oscillation detection).
    upshifted_at: Option<SimTime>,
}

impl SessionCtx {
    fn new(query: QueuedQuery, total_bytes: u64, plan: Option<AdmittedPlan>) -> Self {
        let orig_qos = query.qos.clone();
        SessionCtx { query, total_bytes, plan, orig_qos, upshifted_at: None }
    }
}

fn fail_site(state: &mut SystemState, server: ServerId) {
    match state {
        SystemState::QosApi { api, .. } => {
            api.fail_server(server);
        }
        SystemState::Quasaq { manager, .. } => {
            manager.handle_server_failure(server);
        }
        SystemState::Plain { .. } => {}
    }
}

fn restore_site(state: &mut SystemState, server: ServerId) {
    match state {
        SystemState::QosApi { api, .. } => {
            api.restore_server(server);
        }
        SystemState::Quasaq { manager, .. } => {
            manager.handle_server_restart(server);
        }
        SystemState::Plain { .. } => {}
    }
}

/// A server's composed capacity right now: the fault windows' factors
/// multiplied with the link plan's dynamic set-point. Returns
/// `(net, effective)` — the network side alone (what the admission view
/// tracks on the links path) and `min(net, disk)` (what the fluid link
/// carries; a slow disk starves the link). Both floored at 1 byte/s so
/// in-flight transfers keep draining. The dynamic factor multiplies last
/// (and defaults to exactly 1.0), so fault-only runs compute the same
/// float product they always did.
fn effective_capacity(
    link_factors: &HashMap<ServerId, Vec<f64>>,
    disk_factors: &HashMap<ServerId, Vec<f64>>,
    dyn_factors: &HashMap<ServerId, f64>,
    testbed: &TestbedConfig,
    server: ServerId,
) -> (f64, u64) {
    let product =
        |m: &HashMap<ServerId, Vec<f64>>| m.get(&server).map_or(1.0, |v| v.iter().product::<f64>());
    let net = testbed.link_capacity_bps as f64
        * product(link_factors)
        * dyn_factors.get(&server).copied().unwrap_or(1.0);
    let disk = testbed.disk_bps * product(disk_factors);
    (net.max(1.0), (net.min(disk).max(1.0)) as u64)
}

/// Re-applies a server's effective capacity after its fault factors or
/// dynamic set-point changed, and tracks QoS-violation exposure via the
/// impaired set. Returns the network-side capacity for the admission
/// view.
#[allow(clippy::too_many_arguments)]
fn apply_capacity(
    fluid: &mut FluidEngine,
    impaired: &mut BTreeSet<ServerId>,
    link_factors: &HashMap<ServerId, Vec<f64>>,
    disk_factors: &HashMap<ServerId, Vec<f64>>,
    dyn_factors: &HashMap<ServerId, f64>,
    testbed: &TestbedConfig,
    now: SimTime,
    server: ServerId,
) -> f64 {
    let (net, effective) =
        effective_capacity(link_factors, disk_factors, dyn_factors, testbed, server);
    fluid.set_link_capacity(now, server, effective);
    if effective < testbed.link_capacity_bps {
        impaired.insert(server);
    } else {
        impaired.remove(&server);
    }
    net
}

/// Drops one ended fault window's factor (the first matching entry, so
/// overlapping identical windows compose and unwind deterministically).
fn remove_factor(factors: &mut HashMap<ServerId, Vec<f64>>, server: ServerId, factor: f64) {
    let v = factors.get_mut(&server).expect("fault window began");
    let i = v.iter().position(|&f| f == factor).expect("factor recorded at begin");
    v.remove(i);
}

fn release(state: &mut SystemState, res: ReservationId) {
    match state {
        SystemState::QosApi { api, .. } => api.release(res),
        SystemState::Quasaq { manager, .. } => manager.release_reservation(res),
        SystemState::Plain { .. } => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_done(
    done: Vec<quasaq_stream::FluidDone>,
    reservations: &mut PerSession<ReservationId>,
    state: &mut SystemState,
    outstanding: &mut LevelTracker,
    completions: &mut RateCounter,
    completed: &mut u64,
    deadlines: &mut BTreeSet<(SimTime, FluidSessionId)>,
    deadline_of: &mut PerSession<SimTime>,
    ctxs: &mut PerSession<SessionCtx>,
) {
    for d in done {
        outstanding.adjust(d.at, -1);
        completions.record(d.at);
        *completed += 1;
        if let Some(res) = reservations.remove(d.id) {
            release(state, res);
        }
        if let Some(dl) = deadline_of.remove(d.id) {
            deadlines.remove(&(dl, d.id));
        }
        ctxs.remove(d.id);
    }
}

/// One end-of-instant adaptation pass: poll the congestion watch and act
/// on every edge it reports. Onsets renegotiate up to
/// `max_downshifts_per_event` sessions on the congested server one QoP
/// ladder step down; Cleared edges renegotiate at most one previously
/// degraded session back toward its original request, rate-bounded per
/// server by `upgrade_period`. Adaptation itself moves demand, so the
/// poll loops until a quiet round — bounded, because upshifts are
/// rate-limited and downshifts stop at the ladder floor.
#[allow(clippy::too_many_arguments)]
fn run_adaptation(
    now: SimTime,
    adapt: &AdaptationConfig,
    state: &mut SystemState,
    testbed: &Testbed,
    fluid: &mut FluidEngine,
    rng: &mut Rng,
    ctxs: &mut PerSession<SessionCtx>,
    reservations: &mut PerSession<ReservationId>,
    deadlines: &mut BTreeSet<(SimTime, FluidSessionId)>,
    deadline_of: &mut PerSession<SimTime>,
    patience: Option<SimDuration>,
    access: &mut AccessStats,
    dm: &mut DegradationMetrics,
    last_upshift: &mut HashMap<ServerId, SimTime>,
    profile: &UserProfile,
    link_factors: &HashMap<ServerId, Vec<f64>>,
    disk_factors: &HashMap<ServerId, Vec<f64>>,
    dyn_factors: &HashMap<ServerId, f64>,
) {
    for _ in 0..4 {
        let events = fluid.poll_congestion(now);
        if events.is_empty() {
            break;
        }
        for ev in events {
            match ev.edge {
                CongestionEdge::Onset => {
                    dm.congestion_events += 1;
                    let (_, effective) = effective_capacity(
                        link_factors,
                        disk_factors,
                        dyn_factors,
                        &testbed.config,
                        ev.server,
                    );
                    let mut shed = 0usize;
                    for sid in fluid.sessions_on(ev.server) {
                        if shed >= adapt.max_downshifts_per_event {
                            break;
                        }
                        // Only QuaSAQ sessions carry a renegotiable plan,
                        // and the floor of the ladder stays put.
                        let Some(ctx) = ctxs.get(sid) else { continue };
                        if ctx.plan.is_none() {
                            continue;
                        }
                        let Some(next) = profile.degrade_options(&ctx.query.qos).into_iter().next()
                        else {
                            continue;
                        };
                        let hunting =
                            ctx.upshifted_at.is_some_and(|ts| now < ts + adapt.upgrade_period);
                        if let Some(moved) = renegotiate_session(
                            now,
                            state,
                            testbed,
                            fluid,
                            rng,
                            sid,
                            next,
                            ctxs,
                            reservations,
                            deadlines,
                            deadline_of,
                            patience,
                            access,
                        ) {
                            shed += 1;
                            dm.downshifts += 1;
                            if hunting {
                                dm.oscillations += 1;
                            }
                            dm.violation_secs_avoided +=
                                moved.bytes_saved.max(0.0) / effective.max(1) as f64;
                        }
                    }
                }
                CongestionEdge::Cleared => {
                    let allowed = last_upshift
                        .get(&ev.server)
                        .is_none_or(|&ts| now >= ts + adapt.upgrade_period);
                    if !allowed {
                        continue;
                    }
                    for sid in fluid.sessions_on(ev.server) {
                        let Some(ctx) = ctxs.get(sid) else { continue };
                        if ctx.plan.is_none() || ctx.query.qos == ctx.orig_qos {
                            continue;
                        }
                        let target = ctx.orig_qos.clone();
                        if let Some(moved) = renegotiate_session(
                            now,
                            state,
                            testbed,
                            fluid,
                            rng,
                            sid,
                            target,
                            ctxs,
                            reservations,
                            deadlines,
                            deadline_of,
                            patience,
                            access,
                        ) {
                            dm.upshifts += 1;
                            last_upshift.insert(ev.server, now);
                            if let Some(c) = ctxs.get_mut(moved.sid) {
                                c.upshifted_at = Some(now);
                            }
                            // One upgrade per Cleared edge: recovery is
                            // deliberately slower than degradation.
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Outcome of one successful mid-stream renegotiation.
struct Renegotiated {
    /// The session's new fluid id (cancel + re-add allocates fresh).
    sid: FluidSessionId,
    /// Bytes the re-rate took off the wire (negative for an upshift).
    bytes_saved: f64,
}

/// Renegotiates one live QuaSAQ session to `new_qos`: swaps the
/// reservation through [`QualityManager::renegotiate`] (which keeps the
/// old one on failure), then replaces the fluid session with the
/// remaining fraction of the stream at the new plan's bitrate and
/// rebinds every per-session table to the new id. Returns `None` — with
/// the session untouched — when the manager finds no feasible plan.
#[allow(clippy::too_many_arguments)]
fn renegotiate_session(
    now: SimTime,
    state: &mut SystemState,
    testbed: &Testbed,
    fluid: &mut FluidEngine,
    rng: &mut Rng,
    sid: FluidSessionId,
    new_qos: QosRange,
    ctxs: &mut PerSession<SessionCtx>,
    reservations: &mut PerSession<ReservationId>,
    deadlines: &mut BTreeSet<(SimTime, FluidSessionId)>,
    deadline_of: &mut PerSession<SimTime>,
    patience: Option<SimDuration>,
    access: &mut AccessStats,
) -> Option<Renegotiated> {
    let SystemState::Quasaq { manager, executor } = state else { return None };
    let ctx = ctxs.get(sid)?;
    let plan = ctx.plan.as_ref()?;
    let request =
        PlanRequest { video: ctx.query.video, qos: new_qos.clone(), security: QopSecurity::Open };
    let swapped = manager.renegotiate(&testbed.engine, plan, &request, rng).ok()?;
    let meta = testbed.engine.video(ctx.query.video).expect("known video");
    let (full_bytes, rate) = executor.fluid_params(&swapped.plan, meta);
    let remaining = fluid.session_backlog(sid);
    let frac = (remaining / ctx.total_bytes.max(1) as f64).clamp(0.0, 1.0);
    let bytes = resume_bytes(full_bytes, Some(frac));
    let server = swapped.plan.target_server;
    fluid.cancel_session(now, sid);
    fluid.forget_session(sid);
    let new_sid = fluid.add_session(now, server, bytes, rate).expect("fair-share admits");
    let mut ctx = ctxs.remove(sid).expect("context just read");
    // The old reservation id was consumed by the renegotiation swap —
    // drop it without releasing.
    reservations.remove(sid);
    reservations.insert(new_sid, swapped.reservation);
    if let Some(dl) = deadline_of.remove(sid) {
        deadlines.remove(&(dl, sid));
    }
    if let Some(p) = patience {
        let dl = now + nominal_duration(bytes, rate) + p;
        deadlines.insert((dl, new_sid));
        deadline_of.insert(new_sid, dl);
    }
    access.record(ctx.query.video, server);
    ctx.query.qos = new_qos;
    ctx.total_bytes = bytes;
    ctx.plan = Some(swapped);
    ctxs.insert(new_sid, ctx);
    Some(Renegotiated { sid: new_sid, bytes_saved: remaining - bytes as f64 })
}

/// One admitted session, whichever system admitted it.
struct AdmittedSession {
    sid: FluidSessionId,
    reservation: Option<ReservationId>,
    server: quasaq_sim::ServerId,
    utility: Option<f64>,
    /// Unstretched duration (bytes / rate): what playback takes when the
    /// link honours the stream's pacing rate.
    nominal: SimDuration,
    /// Bytes actually streamed (scaled down on a mid-stream failover).
    bytes: u64,
    /// The admitted plan (QuaSAQ only), handed to the session context so
    /// the adaptation loop can renegotiate it later.
    plan: Option<AdmittedPlan>,
}

/// Scales a replica's size by the fraction still owed after a failover.
fn resume_bytes(bytes: u64, resume: Option<f64>) -> u64 {
    match resume {
        Some(frac) => ((bytes as f64 * frac).ceil() as u64).max(1),
        None => bytes,
    }
}

#[allow(clippy::too_many_arguments)]
fn admit(
    state: &mut SystemState,
    testbed: &Testbed,
    q: &QueuedQuery,
    fluid: &mut FluidEngine,
    rng: &mut Rng,
    now: SimTime,
    resume: Option<f64>,
    down: &BTreeSet<ServerId>,
) -> Result<AdmittedSession, Rejection> {
    match state {
        SystemState::Plain { planner } => {
            // The plain baseline has no reservation layer to notice a dead
            // server, so the crash filter is explicit. With `down` empty
            // this is the legacy `select`, RNG draw for RNG draw.
            let choice = planner
                .select_avoiding(&testbed.engine, q.video, rng, down)
                .ok_or(Rejection::NoFeasiblePlan)?;
            let bytes = resume_bytes(choice.record.object.bytes, resume);
            let rate = choice.record.object.rate_bps;
            let sid = fluid
                .add_session(now, choice.server, bytes, rate)
                .map_err(|_| Rejection::AdmissionFailed)?;
            Ok(AdmittedSession {
                sid,
                reservation: None,
                server: choice.server,
                utility: None,
                nominal: nominal_duration(bytes, rate),
                bytes,
                plan: None,
            })
        }
        SystemState::QosApi { planner, api, headroom } => {
            let choice =
                planner.select(&testbed.engine, q.video, rng).ok_or(Rejection::NoFeasiblePlan)?;
            // The baseline has no cost model, but admission may try each
            // server holding the (full-quality) replica in random order.
            let mut servers: Vec<quasaq_sim::ServerId> = testbed
                .engine
                .replicas(q.video)
                .iter()
                .filter(|r| r.object.rate_bps == choice.record.object.rate_bps)
                .map(|r| r.object.server)
                .collect();
            servers.dedup();
            rng.shuffle(&mut servers);
            let profile = choice.record.profile;
            for server in servers {
                let demand = ResourceVector::new()
                    .with(
                        ResourceKey::new(server, ResourceKind::Cpu),
                        (profile.cpu_share * *headroom).min(1.0),
                    )
                    .with(ResourceKey::new(server, ResourceKind::NetBandwidth), profile.net_bps)
                    .with(ResourceKey::new(server, ResourceKind::DiskBandwidth), profile.disk_bps)
                    .with(ResourceKey::new(server, ResourceKind::Memory), profile.memory_bytes);
                if let Ok(res) = api.reserve(&demand) {
                    let bytes = resume_bytes(choice.record.object.bytes, resume);
                    let rate = choice.record.object.rate_bps;
                    let sid =
                        fluid.add_session(now, server, bytes, rate).expect("fair-share admits");
                    return Ok(AdmittedSession {
                        sid,
                        reservation: Some(res),
                        server,
                        utility: None,
                        nominal: nominal_duration(bytes, rate),
                        bytes,
                        plan: None,
                    });
                }
            }
            Err(Rejection::AdmissionFailed)
        }
        SystemState::Quasaq { manager, executor } => {
            let request =
                PlanRequest { video: q.video, qos: q.qos.clone(), security: QopSecurity::Open };
            let admitted = manager.process(&testbed.engine, &request, rng)?;
            let meta = testbed.engine.video(q.video).expect("known video");
            let (bytes, rate) = executor.fluid_params(&admitted.plan, meta);
            let bytes = resume_bytes(bytes, resume);
            let server = admitted.plan.target_server;
            let utility = UtilityGain { weights: QosWeights::default() }.utility(&admitted.plan);
            let sid = fluid.add_session(now, server, bytes, rate).expect("fair-share admits");
            Ok(AdmittedSession {
                sid,
                reservation: Some(admitted.reservation),
                server,
                utility: Some(utility),
                nominal: nominal_duration(bytes, rate),
                bytes,
                plan: Some(admitted),
            })
        }
    }
}

fn nominal_duration(bytes: u64, rate_bps: u64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / rate_bps.max(1) as f64)
}
