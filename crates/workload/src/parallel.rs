//! Deterministic scenario-parallel experiment execution.
//!
//! The paper's headline figures sweep many *independent* simulation runs —
//! 3 systems × 5 cost models × replication/skew ablations — and every run
//! owns its seeded RNG and mutable state, sharing only the immutable
//! [`Testbed`](crate::Testbed). That makes scenario fan-out embarrassingly
//! parallel: [`parallel_map`] runs one closure per scenario on scoped
//! threads and collects results **by scenario index**, so the output is
//! bit-identical to a serial loop regardless of scheduling, core count, or
//! which thread finishes first.
//!
//! [`run_throughput_scenarios`] is the ready-made fan-out for
//! [`run_throughput`] scenario lists; fig5 and ad-hoc sweeps use
//! [`parallel_map`] directly.

use crate::throughput::{run_throughput, SystemKind, ThroughputConfig, ThroughputResult};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a fan-out over `items` scenarios will use:
/// `min(available cores, items)`, at least 1.
pub fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    cores.min(items).max(1)
}

/// Applies `f` to every item on scoped worker threads and returns the
/// results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so long scenarios —
/// a 7000 s horizon next to a 300 s one — don't leave workers idle behind
/// a static partition. Determinism contract: `f` receives only the item
/// (plus its index) and must not depend on shared mutable state, which is
/// exactly how the experiment drivers are built (per-run seeded RNGs); the
/// result vector is then a pure function of `items` alone.
///
/// Panics in `f` propagate: the scope joins all workers and re-raises, so
/// a failing scenario fails the whole sweep rather than vanishing.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("every index was visited")
        })
        .collect()
}

/// Runs every `(system, config)` scenario concurrently via
/// [`run_throughput`], returning results in scenario order — bit-identical
/// to calling `run_throughput` in a serial loop over the same list.
pub fn run_throughput_scenarios(
    scenarios: &[(SystemKind, ThroughputConfig)],
) -> Vec<ThroughputResult> {
    parallel_map(scenarios, |_, (system, cfg)| run_throughput(*system, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{CostKind, TestbedConfig};
    use quasaq_sim::{SimDuration, SimTime};

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |i, &x| {
            // Stagger finish order so late indices often complete first.
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[41u8], |i, &x| x as usize + 1 + i), vec![42]);
    }

    #[test]
    #[should_panic(expected = "scenario 3 failed")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        parallel_map(&items, |i, _| {
            if i == 3 {
                panic!("scenario 3 failed");
            }
            i
        });
    }

    /// The tentpole determinism regression: the parallel runner's output is
    /// bit-identical (full `ThroughputResult` equality, floats included) to
    /// a serial loop over the same scenario list.
    #[test]
    fn parallel_scenarios_bit_identical_to_serial() {
        let cfg = ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(120),
            sample_step: SimDuration::from_secs(10),
            seed: 23,
            video_skew: 0.0,
            local_plans_only: false,
            admission: None,
            faults: None,
        };
        let scenarios: Vec<(SystemKind, ThroughputConfig)> = vec![
            (SystemKind::Vdbms, cfg.clone()),
            (SystemKind::VdbmsQosApi, cfg.clone()),
            (SystemKind::Quasaq(CostKind::Lrb), cfg.clone()),
            (SystemKind::Quasaq(CostKind::Random), cfg),
        ];
        let serial: Vec<ThroughputResult> =
            scenarios.iter().map(|(s, c)| run_throughput(*s, c)).collect();
        let parallel = run_throughput_scenarios(&scenarios);
        assert_eq!(serial, parallel);
    }

    /// Same contract with the queued admission front end enabled: queue
    /// state (retries, ladder walks, abandonments, deadlines) is driven by
    /// the same simulated-time event loop, so parallel scheduling must not
    /// perturb a single bit of it — queue metrics included.
    #[test]
    fn queued_scenarios_bit_identical_to_serial() {
        let cfg = ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(120),
            sample_step: SimDuration::from_secs(10),
            seed: 29,
            video_skew: 0.0,
            local_plans_only: false,
            admission: Some(crate::admission::AdmissionConfig::default()),
            faults: None,
        };
        let scenarios: Vec<(SystemKind, ThroughputConfig)> = vec![
            (SystemKind::Vdbms, cfg.clone()),
            (SystemKind::VdbmsQosApi, cfg.clone()),
            (SystemKind::Quasaq(CostKind::Lrb), cfg),
        ];
        let serial: Vec<ThroughputResult> =
            scenarios.iter().map(|(s, c)| run_throughput(*s, c)).collect();
        let parallel = run_throughput_scenarios(&scenarios);
        assert_eq!(serial, parallel);
        for r in &parallel {
            let queue = r.queue.as_ref().expect("front end was enabled");
            assert_eq!(queue.wait.count(), r.admitted);
        }
    }
}
