//! Deterministic scenario-parallel experiment execution.
//!
//! The paper's headline figures sweep many *independent* simulation runs —
//! 3 systems × 5 cost models × replication/skew ablations — and every run
//! owns its seeded RNG and mutable state, sharing only the immutable
//! [`Testbed`](crate::Testbed). That makes scenario fan-out embarrassingly
//! parallel: [`parallel_map`] runs one closure per scenario on scoped
//! threads and collects results **by scenario index**, so the output is
//! bit-identical to a serial loop regardless of scheduling, core count, or
//! which thread finishes first.
//!
//! [`run_throughput_scenarios`] is the ready-made fan-out for
//! [`run_throughput`] scenario lists; fig5 and ad-hoc sweeps use
//! [`parallel_map`] directly.

use crate::throughput::{run_throughput, SystemKind, ThroughputConfig, ThroughputResult};
use quasaq_sim::DomainStepper;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of worker threads a fan-out over `items` scenarios will use:
/// `min(available cores, items)`, at least 1.
pub fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    cores.min(items).max(1)
}

/// Applies `f` to every item on scoped worker threads and returns the
/// results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so long scenarios —
/// a 7000 s horizon next to a 300 s one — don't leave workers idle behind
/// a static partition. Determinism contract: `f` receives only the item
/// (plus its index) and must not depend on shared mutable state, which is
/// exactly how the experiment drivers are built (per-run seeded RNGs); the
/// result vector is then a pure function of `items` alone.
///
/// Panics in `f` propagate: the scope joins all workers and re-raises, so
/// a failing scenario fails the whole sweep rather than vanishing.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("every index was visited")
        })
        .collect()
}

/// Runs every `(system, config)` scenario concurrently via
/// [`run_throughput`], returning results in scenario order — bit-identical
/// to calling `run_throughput` in a serial loop over the same list.
pub fn run_throughput_scenarios(
    scenarios: &[(SystemKind, ThroughputConfig)],
) -> Vec<ThroughputResult> {
    parallel_map(scenarios, |_, (system, cfg)| run_throughput(*system, cfg))
}

/// A closure reference with its lifetime erased so it can sit in the
/// pool's shared job slot. Only dereferenced while the publishing
/// `for_each` call is still on the stack (see the claim protocol below).
type ErasedJob = &'static (dyn Fn(usize) + Sync);

struct JobSlot {
    /// Monotonic job counter; bumping it publishes a new job.
    generation: u64,
    /// Item count of the current job.
    items: usize,
    /// The current job's closure (`None` until the first job).
    job: Option<ErasedJob>,
    shutdown: bool,
}

struct PoolShared {
    slot: Mutex<JobSlot>,
    posted: Condvar,
    /// Packed `(generation & 0xffff_ffff) << 32 | next_index`, claimed via
    /// compare-exchange. Tagging the cursor with the generation closes the
    /// ABA race where a worker that dozed through a generation change
    /// would otherwise `fetch_add` itself an index of the *next* job.
    cursor: AtomicU64,
    /// Indices of the current job not yet finished running.
    pending: AtomicUsize,
    /// Set when any index's closure panicked.
    panicked: AtomicBool,
}

const GEN_MASK: u64 = 0xffff_ffff;

fn pack(generation: u64, index: usize) -> u64 {
    ((generation & GEN_MASK) << 32) | index as u64
}

/// Claims and runs indices of job `generation` until the cursor leaves the
/// generation or the job is exhausted.
fn run_claims(shared: &PoolShared, generation: u64, items: usize, job: ErasedJob) {
    loop {
        let cur = shared.cursor.load(Ordering::Acquire);
        if cur >> 32 != generation & GEN_MASK {
            return; // a newer job took over — this one is fully claimed
        }
        let index = (cur & GEN_MASK) as usize;
        if index >= items {
            return;
        }
        if shared
            .cursor
            .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(index)));
        if outcome.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        shared.pending.fetch_sub(1, Ordering::Release);
    }
}

/// A persistent worker pool stepping independent per-server domains.
///
/// [`parallel_map`] spawns scoped threads per call, which is fine for
/// scenario fan-out (a handful of multi-second runs) but far too slow for
/// domain stepping: the throughput driver advances domains at **every
/// event** of the simulation — hundreds of thousands of calls per run —
/// so the pool keeps its workers parked on a condvar and republishes a
/// shared job slot instead of spawning.
///
/// Determinism: the pool only distributes *which thread* steps each
/// domain; a domain step touches nothing outside its own domain, so any
/// interleaving yields bit-identical state (see `sim::domain`).
pub struct DomainPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DomainPool {
    /// A pool with `workers` total lanes of parallelism, the calling
    /// thread included — `DomainPool::new(4)` spawns three helper threads
    /// and the publishing thread works alongside them.
    ///
    /// Lanes are capped at the machine's available parallelism: helper
    /// threads beyond the core count cannot speed anything up, but their
    /// per-event wake/claim traffic still costs (the driver calls
    /// [`DomainStepper::for_each`] at every simulation event). On a
    /// single-core box the pool therefore spawns nothing and steps
    /// domains inline — output is bit-identical at every lane count, so
    /// the cap changes timing only.
    pub fn new(workers: usize) -> Self {
        let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Self::with_lanes(workers.min(cores))
    }

    /// A pool with exactly `workers` lanes, uncapped — the threaded
    /// publish/claim machinery must stay testable on single-core boxes.
    pub(crate) fn with_lanes(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot { generation: 0, items: 0, job: None, shutdown: false }),
            posted: Condvar::new(),
            cursor: AtomicU64::new(pack(0, 0)),
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let workers = (1..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        let (generation, items, job) = {
                            let mut slot = shared.slot.lock().expect("domain pool slot poisoned");
                            loop {
                                if slot.shutdown {
                                    return;
                                }
                                if slot.generation > seen {
                                    break;
                                }
                                slot = shared.posted.wait(slot).expect("domain pool slot poisoned");
                            }
                            seen = slot.generation;
                            (slot.generation, slot.items, slot.job.expect("job published"))
                        };
                        run_claims(&shared, generation, items, job);
                    }
                })
            })
            .collect();
        DomainPool { shared, workers }
    }

    /// Total lanes of parallelism (helper threads + the calling thread).
    pub fn workers(&self) -> usize {
        self.workers.len() + 1
    }
}

// SAFETY: every index in 0..n is claimed by exactly one thread via the
// generation-tagged compare-exchange in `run_claims`, and `for_each` does
// not return until `pending` — decremented once per finished index — hits
// zero, so the erased closure never outlives the call.
unsafe impl DomainStepper for DomainPool {
    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.workers.is_empty() {
            // No helper threads (single-core cap): step inline with zero
            // publish/claim overhead. Exactly-once trivially holds.
            for i in 0..n {
                f(i);
            }
            return;
        }
        // SAFETY: the erased reference is only dereferenced before
        // `pending` reaches zero, i.e. strictly within this call.
        let job: ErasedJob = unsafe { std::mem::transmute(f) };
        let generation;
        {
            let mut slot = self.shared.slot.lock().expect("domain pool slot poisoned");
            slot.generation += 1;
            generation = slot.generation;
            slot.items = n;
            slot.job = Some(job);
            self.shared.pending.store(n, Ordering::Release);
            self.shared.cursor.store(pack(generation, 0), Ordering::Release);
        }
        self.shared.posted.notify_all();
        run_claims(&self.shared, generation, n, job);
        // Spin out the stragglers: at this point every index is claimed,
        // so the wait is bounded by one in-flight domain step.
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        if self.shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("domain step panicked on a pool worker");
        }
    }
}

impl Drop for DomainPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("domain pool slot poisoned");
            slot.shutdown = true;
        }
        self.shared.posted.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{CostKind, TestbedConfig};
    use quasaq_sim::{SimDuration, SimTime};

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |i, &x| {
            // Stagger finish order so late indices often complete first.
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[41u8], |i, &x| x as usize + 1 + i), vec![42]);
    }

    #[test]
    #[should_panic(expected = "scenario 3 failed")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        parallel_map(&items, |i, _| {
            if i == 3 {
                panic!("scenario 3 failed");
            }
            i
        });
    }

    #[test]
    fn domain_pool_visits_every_index_exactly_once() {
        // Force 4 lanes regardless of the box's core count: this test is
        // about the cross-thread claims machinery, not the sizing policy.
        let pool = DomainPool::with_lanes(4);
        assert_eq!(pool.workers(), 4);
        // Many small jobs through one pool: the generation-tagged cursor
        // must never skip or double-run an index across job boundaries.
        for items in [1usize, 2, 3, 17, 64] {
            for _ in 0..25 {
                let hits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
                pool.for_each(items, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} of {items}");
                }
            }
        }
    }

    #[test]
    fn domain_pool_single_lane_and_empty_jobs() {
        let pool = DomainPool::new(1);
        assert_eq!(pool.workers(), 1);
        pool.for_each(0, &|_| panic!("no indices, no calls"));
        let hits = AtomicUsize::new(0);
        pool.for_each(5, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    #[should_panic(expected = "domain step panicked")]
    fn domain_pool_propagates_worker_panics() {
        let pool = DomainPool::with_lanes(2);
        pool.for_each(8, &|i| {
            if i == 3 {
                panic!("boom");
            }
        });
    }

    /// The tentpole determinism regression: the parallel runner's output is
    /// bit-identical (full `ThroughputResult` equality, floats included) to
    /// a serial loop over the same scenario list.
    #[test]
    fn parallel_scenarios_bit_identical_to_serial() {
        let cfg = ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(120),
            sample_step: SimDuration::from_secs(10),
            seed: 23,
            video_skew: 0.0,
            qop_mix: crate::traffic::QopMix::Uniform,
            local_plans_only: false,
            admission: None,
            faults: None,
            arrival_period: None,
            arrival_burst: 1,
            plan_cache: false,
            domain_workers: 0,
            links: None,
            adaptation: None,
        };
        let scenarios: Vec<(SystemKind, ThroughputConfig)> = vec![
            (SystemKind::Vdbms, cfg.clone()),
            (SystemKind::VdbmsQosApi, cfg.clone()),
            (SystemKind::Quasaq(CostKind::Lrb), cfg.clone()),
            (SystemKind::Quasaq(CostKind::Random), cfg),
        ];
        let serial: Vec<ThroughputResult> =
            scenarios.iter().map(|(s, c)| run_throughput(*s, c)).collect();
        let parallel = run_throughput_scenarios(&scenarios);
        assert_eq!(serial, parallel);
    }

    /// Same contract with the queued admission front end enabled: queue
    /// state (retries, ladder walks, abandonments, deadlines) is driven by
    /// the same simulated-time event loop, so parallel scheduling must not
    /// perturb a single bit of it — queue metrics included.
    #[test]
    fn queued_scenarios_bit_identical_to_serial() {
        let cfg = ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(120),
            sample_step: SimDuration::from_secs(10),
            seed: 29,
            video_skew: 0.0,
            qop_mix: crate::traffic::QopMix::Uniform,
            local_plans_only: false,
            admission: Some(crate::admission::AdmissionConfig::default()),
            faults: None,
            arrival_period: None,
            arrival_burst: 1,
            plan_cache: false,
            domain_workers: 0,
            links: None,
            adaptation: None,
        };
        let scenarios: Vec<(SystemKind, ThroughputConfig)> = vec![
            (SystemKind::Vdbms, cfg.clone()),
            (SystemKind::VdbmsQosApi, cfg.clone()),
            (SystemKind::Quasaq(CostKind::Lrb), cfg),
        ];
        let serial: Vec<ThroughputResult> =
            scenarios.iter().map(|(s, c)| run_throughput(*s, c)).collect();
        let parallel = run_throughput_scenarios(&scenarios);
        assert_eq!(serial, parallel);
        for r in &parallel {
            let queue = r.queue.as_ref().expect("front end was enabled");
            assert_eq!(queue.wait.count(), r.admitted);
        }
    }
}
