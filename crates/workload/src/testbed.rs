//! Testbed assembly: the paper's experimental deployment in one struct.
//!
//! "The experiments are performed on a small distributed system containing
//! three servers … Each server has a total streaming bandwidth of
//! 3200KBps. … Our experimental video database contains 15 videos in
//! MPEG-1 format with playback time ranging from 30 seconds to 18
//! minutes. For each video, three to four copies with different quality
//! are generated and fully replicated on three servers so that each
//! server has all copies."

use quasaq_core::{
    CostModel, EfficiencyModel, GeneratorConfig, LrbModel, MinBitrateModel, PlanGenerator,
    QosWeights, QualityManager, RandomModel, UtilityGain, WeightedSumModel,
};
use quasaq_media::{DeliveryCostModel, Library, LibraryConfig};
use quasaq_qosapi::CompositeQosApi;
use quasaq_sim::ServerId;
use quasaq_store::{MetadataEngine, ObjectStore, Placement, QosSampler, ReplicationPlanner};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

/// Cost-model selection for QuaSAQ runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// The paper's Lowest Resource Bucket model.
    Lrb,
    /// The paper's randomized baseline.
    Random,
    /// Static greedy (min delivered bitrate) — ablation.
    MinBitrate,
    /// Sum-of-fills instead of max — ablation.
    WeightedSum,
    /// The configurable optimizer extension: cost efficiency `E = G/C`
    /// with a perceptual-utility gain (paper future work).
    Utility,
}

impl CostKind {
    /// Instantiates the model.
    pub fn build(self) -> Box<dyn CostModel> {
        match self {
            CostKind::Lrb => Box::new(LrbModel),
            CostKind::Random => Box::new(RandomModel),
            CostKind::MinBitrate => Box::new(MinBitrateModel),
            CostKind::WeightedSum => Box::new(WeightedSumModel::default()),
            CostKind::Utility => {
                Box::new(EfficiencyModel::new(UtilityGain { weights: QosWeights::default() }))
            }
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CostKind::Lrb => "LRB",
            CostKind::Random => "Random",
            CostKind::MinBitrate => "MinBitrate",
            CostKind::WeightedSum => "WeightedSum",
            CostKind::Utility => "Utility",
        }
    }
}

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Master seed for catalog generation.
    pub seed: u64,
    /// Number of servers (paper: 3).
    pub servers: u32,
    /// Per-server streaming bandwidth in bytes/second (paper: 3200 KB/s).
    pub link_capacity_bps: u64,
    /// Per-server disk read bandwidth in bytes/second.
    pub disk_bps: f64,
    /// Per-server stream-buffer memory in bytes.
    pub memory_bytes: f64,
    /// Catalog shape.
    pub library: LibraryConfig,
    /// Replica placement (paper: full replication).
    pub placement: Placement,
    /// Delivery cost model shared by sampler, planner and executor.
    pub cost: DeliveryCostModel,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 42,
            servers: 3,
            link_capacity_bps: 3_200_000,
            disk_bps: 20_000_000.0,
            memory_bytes: 512e6,
            library: LibraryConfig::default(),
            placement: Placement::Full,
            cost: DeliveryCostModel::default(),
        }
    }
}

impl TestbedConfig {
    /// An N-server, V-video deployment for scaling studies. Spread
    /// placement (three copies per tier) keeps the replica count linear
    /// in the catalog, where the paper's full replication would build
    /// `videos x tiers x servers` objects — quadratic growth that makes a
    /// 100-server / 10^4-video testbed impractical to even construct.
    pub fn scale(servers: u32, num_videos: usize) -> Self {
        TestbedConfig {
            servers,
            library: LibraryConfig { num_videos, ..LibraryConfig::default() },
            placement: Placement::Spread { copies: 3 },
            ..TestbedConfig::default()
        }
    }
}

/// Exact value-identity of a [`TestbedConfig`] for the shared-testbed
/// cache: every field reduced to hashable bits (floats via `to_bits`), so
/// equal keys imply configs that build bit-identical testbeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConfigKey {
    seed: u64,
    servers: u32,
    link_capacity_bps: u64,
    disk_bps: u64,
    memory_bytes: u64,
    num_videos: usize,
    min_duration_us: u64,
    max_duration_us: u64,
    min_replicas: usize,
    max_replicas: usize,
    placement: (u8, u32),
    cost_bits: [u64; 6],
}

impl ConfigKey {
    fn of(config: &TestbedConfig) -> Self {
        ConfigKey {
            seed: config.seed,
            servers: config.servers,
            link_capacity_bps: config.link_capacity_bps,
            disk_bps: config.disk_bps.to_bits(),
            memory_bytes: config.memory_bytes.to_bits(),
            num_videos: config.library.num_videos,
            min_duration_us: config.library.min_duration.as_micros(),
            max_duration_us: config.library.max_duration.as_micros(),
            min_replicas: config.library.min_replicas,
            max_replicas: config.library.max_replicas,
            placement: match config.placement {
                Placement::Full => (0, 0),
                Placement::RoundRobin => (1, 0),
                Placement::Spread { copies } => (2, copies),
            },
            cost_bits: [
                config.cost.stream_cpu_us_per_byte.to_bits(),
                config.cost.stream_cpu_us_per_frame.to_bits(),
                config.cost.buffer_seconds.to_bits(),
                config.cost.transcode.decode_us_per_mpx.to_bits(),
                config.cost.transcode.encode_us_per_mpx.to_bits(),
                config.cost.reservation_headroom.to_bits(),
            ],
        }
    }
}

fn shared_cache() -> &'static Mutex<HashMap<ConfigKey, Arc<Testbed>>> {
    static CACHE: OnceLock<Mutex<HashMap<ConfigKey, Arc<Testbed>>>> = OnceLock::new();
    CACHE.get_or_init(Default::default)
}

/// The assembled deployment: catalog, stores, metadata.
pub struct Testbed {
    /// Configuration it was built from.
    pub config: TestbedConfig,
    /// The generated catalog.
    pub library: Library,
    /// Per-server object stores.
    pub stores: BTreeMap<ServerId, ObjectStore>,
    /// The distributed metadata engine.
    pub engine: MetadataEngine,
}

impl Testbed {
    /// Builds the deployment: generate the catalog, replicate it, sample
    /// QoS profiles.
    pub fn build(config: TestbedConfig) -> Self {
        let library = Library::generate(config.seed, &config.library);
        let mut stores = BTreeMap::new();
        for s in ServerId::first_n(config.servers) {
            stores.insert(s, ObjectStore::new(s, 1 << 42));
        }
        let mut engine = MetadataEngine::new(ServerId::first_n(config.servers), 64);
        ReplicationPlanner::new(QosSampler { cost: config.cost }, config.placement)
            .replicate(&library, &mut stores, &mut engine)
            .expect("testbed replication fits");
        Testbed { config, library, stores, engine }
    }

    /// Returns the cached deployment for `config`, building it on first
    /// use. Library generation (GOP structures + VBR traces for every
    /// replica) dominates scenario startup, and every experiment that
    /// sweeps N system-variants over one deployment repays the build once
    /// instead of N times. `build` is a pure function of the config, so the
    /// cached instance is bit-identical to a private build; the cache is
    /// process-wide and never evicts (experiment processes use a handful of
    /// configs at most).
    pub fn shared(config: TestbedConfig) -> Arc<Testbed> {
        let key = ConfigKey::of(&config);
        if let Some(tb) = shared_cache().lock().expect("testbed cache poisoned").get(&key) {
            return Arc::clone(tb);
        }
        // Build outside the lock: concurrent scenario threads building
        // *different* configs must not serialize on one global mutex. Two
        // racers on the same key build twice; the first insert wins and the
        // loser's copy is dropped (identical contents either way).
        let built = Arc::new(Testbed::build(config));
        let mut cache = shared_cache().lock().expect("testbed cache poisoned");
        Arc::clone(cache.entry(key).or_insert(built))
    }

    /// A fresh Composite QoS API sized to this deployment.
    pub fn qos_api(&self) -> CompositeQosApi {
        CompositeQosApi::homogeneous_cluster(
            self.servers(),
            self.config.link_capacity_bps as f64,
            self.config.disk_bps,
            self.config.memory_bytes,
        )
    }

    /// A fresh Quality Manager with the chosen cost model.
    pub fn quality_manager(&self, cost: CostKind) -> QualityManager {
        self.quality_manager_with(
            cost,
            GeneratorConfig { cost: self.config.cost, ..GeneratorConfig::default() },
        )
    }

    /// A fresh Quality Manager with an explicit generator configuration
    /// (e.g. local-only planning for placement studies).
    pub fn quality_manager_with(
        &self,
        cost: CostKind,
        generator: GeneratorConfig,
    ) -> QualityManager {
        QualityManager::new(self.qos_api(), PlanGenerator::new(generator), cost.build())
    }

    /// The server ids of this deployment.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> {
        ServerId::first_n(self.config.servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_testbed_matches_paper() {
        let tb = Testbed::build(TestbedConfig::default());
        assert_eq!(tb.library.len(), 15);
        assert_eq!(tb.stores.len(), 3);
        // Full replication: each store holds every tier of every video.
        let total_tiers: usize = tb.library.entries().iter().map(|e| e.replicas.len()).sum();
        for store in tb.stores.values() {
            assert_eq!(store.object_count(), total_tiers);
        }
        assert_eq!(tb.engine.object_count(), total_tiers * 3);
    }

    #[test]
    fn qos_api_has_capacity() {
        let tb = Testbed::build(TestbedConfig::default());
        let api = tb.qos_api();
        assert_eq!(api.buckets().count(), 12);
    }

    #[test]
    fn shared_testbed_is_cached_per_config() {
        let a = Testbed::shared(TestbedConfig::default());
        let b = Testbed::shared(TestbedConfig::default());
        assert!(Arc::ptr_eq(&a, &b), "equal configs must share one build");
        let c = Testbed::shared(TestbedConfig { seed: 7, ..TestbedConfig::default() });
        assert!(!Arc::ptr_eq(&a, &c), "different seeds must not alias");
        // The cached instance matches a private build of the same config.
        let fresh = Testbed::build(TestbedConfig::default());
        assert_eq!(a.library.len(), fresh.library.len());
        assert_eq!(a.engine.object_count(), fresh.engine.object_count());
    }

    /// The ISSUE acceptance scenario: a hundred-server, ten-thousand-video
    /// deployment must be constructible (spread placement keeps the
    /// replica count linear in the catalog) and must admit queries
    /// end-to-end through the Quality Manager.
    #[test]
    fn hundred_server_ten_thousand_video_testbed_builds_and_admits() {
        let tb = Testbed::build(TestbedConfig::scale(100, 10_000));
        assert_eq!(tb.library.len(), 10_000);
        assert_eq!(tb.stores.len(), 100);
        let total_tiers: usize = tb.library.entries().iter().map(|e| e.replicas.len()).sum();
        // Three copies per tier, not tiers x 100.
        assert_eq!(tb.engine.object_count(), total_tiers * 3);
        let mut manager = tb.quality_manager(CostKind::Lrb);
        let mut rng = quasaq_sim::Rng::new(17);
        let profile = quasaq_core::UserProfile::new("scale");
        let mut admitted = 0;
        for v in [0u32, 4_999, 9_999] {
            let qop = crate::traffic::random_qop(&mut rng);
            let request = quasaq_core::PlanRequest {
                video: quasaq_media::VideoId(v),
                qos: profile.translate(&qop),
                security: quasaq_core::QopSecurity::Open,
            };
            if manager.process(&tb.engine, &request, &mut rng).is_ok() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 3, "an idle hundred-server cluster admits everything");
    }

    #[test]
    fn managers_use_selected_model() {
        let tb = Testbed::build(TestbedConfig::default());
        for kind in [
            CostKind::Lrb,
            CostKind::Random,
            CostKind::MinBitrate,
            CostKind::WeightedSum,
            CostKind::Utility,
        ] {
            let m = tb.quality_manager(kind);
            assert!(!m.cost_model_name().is_empty());
        }
        assert_eq!(CostKind::Lrb.label(), "LRB");
    }
}
