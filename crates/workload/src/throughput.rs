//! The throughput experiment driver (Fig 6 and Fig 7).
//!
//! Feeds the same Poisson query stream into one of the three systems —
//! plain VDBMS, VDBMS + QoS API, or VDBMS + QuaSAQ (with a selectable
//! cost model) — over the fluid session engine, and records what the
//! paper plots: outstanding sessions over time (Figs 6a, 7a),
//! accomplished jobs per minute (Fig 6b), and cumulative rejects
//! (Fig 7b).

use crate::testbed::{CostKind, Testbed, TestbedConfig};
use crate::traffic::{generate_queries, GeneratedQuery, TrafficConfig};
use quasaq_core::{
    PlanExecutor, PlanRequest, QopSecurity, QosWeights, QualityManager, UtilityGain,
};
use quasaq_qosapi::{CompositeQosApi, ReservationId, ResourceKey, ResourceKind, ResourceVector};
use quasaq_sim::link::SharePolicy;
use quasaq_sim::{LevelTracker, RateCounter, Rng, Series, SimDuration, SimTime};
use quasaq_store::AccessStats;
use quasaq_stream::{FluidEngine, FluidSessionId};
use quasaq_vdbms::{BaselineKind, BaselinePlanner};
use std::collections::HashMap;

/// Which system services the query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Plain VDBMS: admit everything, stream the original best-effort.
    Vdbms,
    /// VDBMS with the QoS API: reserve the full-quality stream, reject on
    /// saturation.
    VdbmsQosApi,
    /// Full QuaSAQ with the given cost model.
    Quasaq(CostKind),
}

impl SystemKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            SystemKind::Vdbms => "VDBMS".to_string(),
            SystemKind::VdbmsQosApi => "VDBMS+QoS API".to_string(),
            SystemKind::Quasaq(c) => format!("VDBMS+QuaSAQ({})", c.label()),
        }
    }
}

/// Run parameters.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Deployment.
    pub testbed: TestbedConfig,
    /// Run length (Fig 6: 1000 s; Fig 7: 7000 s).
    pub horizon: SimTime,
    /// Sampling step for the outstanding-sessions series.
    pub sample_step: SimDuration,
    /// Master seed (traffic and tie-breaking).
    pub seed: u64,
    /// Zipf skew over videos (0 = the paper's uniform access).
    pub video_skew: f64,
    /// Restrict QuaSAQ plans to the replica's own site (placement
    /// studies; the paper's default allows cross-site delivery).
    pub local_plans_only: bool,
}

impl ThroughputConfig {
    /// The Fig 6 configuration (1000 s horizon).
    pub fn fig6() -> Self {
        ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(1000),
            sample_step: SimDuration::from_secs(10),
            seed: 7,
            video_skew: 0.0,
            local_plans_only: false,
        }
    }

    /// The Fig 7 configuration (7000 s horizon).
    pub fn fig7() -> Self {
        ThroughputConfig { horizon: SimTime::from_secs(7000), ..Self::fig6() }
    }
}

/// Everything the paper plots for one run. `PartialEq` compares every
/// field (floats bit-for-bit via their numeric equality), which is what
/// the parallel-runner determinism checks rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputResult {
    /// System label.
    pub label: String,
    /// Outstanding sessions sampled over time (Figs 6a, 7a).
    pub outstanding: Series,
    /// Completed jobs per minute (Fig 6b).
    pub completions_per_min: RateCounter,
    /// Cumulative rejects over time (Fig 7b).
    pub rejects: Series,
    /// Total queries issued.
    pub queries: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Queries rejected.
    pub rejected: u64,
    /// Sessions completed within the horizon.
    pub completed: u64,
    /// Which video was served from which server, per admitted session
    /// (drives the online-migration extension).
    pub access: AccessStats,
    /// Mean perceptual utility of admitted plans (QuaSAQ systems only).
    pub mean_utility: Option<f64>,
}

impl ThroughputResult {
    /// Mean outstanding sessions over the stable stage (second half of the
    /// run).
    pub fn stable_outstanding(&self, horizon: SimTime) -> f64 {
        self.outstanding
            .window_mean(horizon.halved(), horizon + SimDuration::from_secs(1))
            .unwrap_or(0.0)
    }
}

enum SystemState {
    Plain { planner: BaselinePlanner },
    QosApi { planner: BaselinePlanner, api: CompositeQosApi, headroom: f64 },
    Quasaq { manager: QualityManager, executor: PlanExecutor },
}

/// Runs one system against the shared query stream on the (process-wide,
/// immutably shared) testbed for `cfg.testbed`. Runs never mutate the
/// testbed, so N system-variants over one deployment pay for catalog
/// generation once; callers that *do* mutate the replica layout build
/// their own testbed and use [`run_throughput_on`].
pub fn run_throughput(system: SystemKind, cfg: &ThroughputConfig) -> ThroughputResult {
    let testbed = Testbed::shared(cfg.testbed.clone());
    run_throughput_on(&testbed, system, cfg)
}

/// Runs one system against the query stream on an existing testbed (so
/// callers can mutate the replica layout between runs, e.g. for the
/// online-migration extension).
pub fn run_throughput_on(
    testbed: &Testbed,
    system: SystemKind,
    cfg: &ThroughputConfig,
) -> ThroughputResult {
    let mut traffic = TrafficConfig::paper(testbed.library.len(), cfg.horizon);
    traffic.video_skew = cfg.video_skew;
    let queries = generate_queries(cfg.seed ^ 0x51ab_17e5, &traffic);
    let mut rng = Rng::new(cfg.seed ^ 0x9e37_79b9);

    let mut state = match system {
        SystemKind::Vdbms => {
            SystemState::Plain { planner: BaselinePlanner::new(BaselineKind::Plain) }
        }
        SystemKind::VdbmsQosApi => SystemState::QosApi {
            planner: BaselinePlanner::new(BaselineKind::WithQosApi),
            api: testbed.qos_api(),
            headroom: cfg.testbed.cost.reservation_headroom,
        },
        SystemKind::Quasaq(kind) => SystemState::Quasaq {
            manager: testbed.quality_manager_with(
                kind,
                quasaq_core::GeneratorConfig {
                    cost: cfg.testbed.cost,
                    allow_remote: !cfg.local_plans_only,
                    ..quasaq_core::GeneratorConfig::default()
                },
            ),
            executor: PlanExecutor { cost: cfg.testbed.cost, ..PlanExecutor::default() },
        },
    };

    // All systems pace sessions at their stream rate on fair-share links;
    // reservation-based systems enforce admission in the QoS API, so the
    // link never oversubscribes for them.
    let mut fluid =
        FluidEngine::new(testbed.servers(), SharePolicy::FairShare, cfg.testbed.link_capacity_bps);

    let mut reservations: HashMap<FluidSessionId, ReservationId> = HashMap::new();
    let mut outstanding = LevelTracker::new();
    let mut completions = RateCounter::new(SimDuration::from_secs(60));
    let mut rejects = Series::new();
    let mut rejected = 0u64;
    let mut admitted = 0u64;
    let mut completed = 0u64;
    let mut access = AccessStats::new();
    let mut utility_sum = 0.0f64;
    let mut utility_n = 0u64;

    let handle_done = |done: Vec<quasaq_stream::FluidDone>,
                       reservations: &mut HashMap<FluidSessionId, ReservationId>,
                       state: &mut SystemState,
                       outstanding: &mut LevelTracker,
                       completions: &mut RateCounter,
                       completed: &mut u64| {
        for d in done {
            outstanding.adjust(d.at, -1);
            completions.record(d.at);
            *completed += 1;
            if let Some(res) = reservations.remove(&d.id) {
                match state {
                    SystemState::QosApi { api, .. } => api.release(res),
                    SystemState::Quasaq { manager, .. } => manager.release_reservation(res),
                    SystemState::Plain { .. } => {}
                }
            }
        }
    };

    let mut qi = 0usize;
    loop {
        let tq = queries.get(qi).map(|q| q.at);
        let tf = fluid.next_event().filter(|&t| t <= cfg.horizon);
        let t = match (tq, tf) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        if t > cfg.horizon {
            break;
        }
        fluid.advance_to(t);
        handle_done(
            fluid.drain_completions(),
            &mut reservations,
            &mut state,
            &mut outstanding,
            &mut completions,
            &mut completed,
        );
        if tq == Some(t) {
            let q = &queries[qi];
            qi += 1;
            match admit(&mut state, testbed, q, &mut fluid, &mut rng, t) {
                Some((sid, reservation, served_from, utility)) => {
                    admitted += 1;
                    outstanding.adjust(t, 1);
                    access.record(q.video, served_from);
                    if let Some(u) = utility {
                        utility_sum += u;
                        utility_n += 1;
                    }
                    if let Some(res) = reservation {
                        reservations.insert(sid, res);
                    }
                }
                None => {
                    rejected += 1;
                    rejects.push(t, rejected as f64);
                }
            }
        }
    }
    fluid.advance_to(cfg.horizon);
    handle_done(
        fluid.drain_completions(),
        &mut reservations,
        &mut state,
        &mut outstanding,
        &mut completions,
        &mut completed,
    );

    ThroughputResult {
        label: system.label(),
        outstanding: outstanding.sample(cfg.sample_step, cfg.horizon),
        completions_per_min: completions,
        rejects,
        queries: queries.len() as u64,
        admitted,
        rejected,
        completed,
        access,
        mean_utility: (utility_n > 0).then(|| utility_sum / utility_n as f64),
    }
}

fn admit(
    state: &mut SystemState,
    testbed: &Testbed,
    q: &GeneratedQuery,
    fluid: &mut FluidEngine,
    rng: &mut Rng,
    now: SimTime,
) -> Option<(FluidSessionId, Option<ReservationId>, quasaq_sim::ServerId, Option<f64>)> {
    match state {
        SystemState::Plain { planner } => {
            let choice = planner.select(&testbed.engine, q.video, rng)?;
            let sid = fluid
                .add_session(
                    now,
                    choice.server,
                    choice.record.object.bytes,
                    choice.record.object.rate_bps,
                )
                .ok()?;
            Some((sid, None, choice.server, None))
        }
        SystemState::QosApi { planner, api, headroom } => {
            let choice = planner.select(&testbed.engine, q.video, rng)?;
            // The baseline has no cost model, but admission may try each
            // server holding the (full-quality) replica in random order.
            let mut servers: Vec<quasaq_sim::ServerId> = testbed
                .engine
                .replicas(q.video)
                .iter()
                .filter(|r| r.object.rate_bps == choice.record.object.rate_bps)
                .map(|r| r.object.server)
                .collect();
            servers.dedup();
            rng.shuffle(&mut servers);
            let profile = choice.record.profile;
            for server in servers {
                let demand = ResourceVector::new()
                    .with(
                        ResourceKey::new(server, ResourceKind::Cpu),
                        (profile.cpu_share * *headroom).min(1.0),
                    )
                    .with(ResourceKey::new(server, ResourceKind::NetBandwidth), profile.net_bps)
                    .with(ResourceKey::new(server, ResourceKind::DiskBandwidth), profile.disk_bps)
                    .with(ResourceKey::new(server, ResourceKind::Memory), profile.memory_bytes);
                if let Ok(res) = api.reserve(&demand) {
                    let sid = fluid
                        .add_session(
                            now,
                            server,
                            choice.record.object.bytes,
                            choice.record.object.rate_bps,
                        )
                        .expect("fair-share admits");
                    return Some((sid, Some(res), server, None));
                }
            }
            None
        }
        SystemState::Quasaq { manager, executor } => {
            let request =
                PlanRequest { video: q.video, qos: q.qos.clone(), security: QopSecurity::Open };
            let admitted = manager.process(&testbed.engine, &request, rng).ok()?;
            let meta = testbed.engine.video(q.video).expect("known video");
            let (bytes, rate) = executor.fluid_params(&admitted.plan, meta);
            let server = admitted.plan.target_server;
            let utility = UtilityGain { weights: QosWeights::default() }.utility(&admitted.plan);
            let sid = fluid.add_session(now, server, bytes, rate).expect("fair-share admits");
            Some((sid, Some(admitted.reservation), server, Some(utility)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg() -> ThroughputConfig {
        ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(300),
            sample_step: SimDuration::from_secs(10),
            seed: 11,
            video_skew: 0.0,
            local_plans_only: false,
        }
    }

    #[test]
    fn plain_vdbms_admits_everything() {
        let r = run_throughput(SystemKind::Vdbms, &short_cfg());
        assert_eq!(r.rejected, 0);
        assert_eq!(r.admitted, r.queries);
        assert!(r.stable_outstanding(SimTime::from_secs(300)) > 0.0);
    }

    #[test]
    fn qos_api_rejects_under_load() {
        let r = run_throughput(SystemKind::VdbmsQosApi, &short_cfg());
        assert!(r.rejected > 0, "expected rejects under 1 q/s of full-quality demand");
        assert_eq!(r.admitted + r.rejected, r.queries);
    }

    #[test]
    fn quasaq_outserves_qos_api() {
        let cfg = short_cfg();
        let quasaq = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let qosapi = run_throughput(SystemKind::VdbmsQosApi, &cfg);
        let h = SimTime::from_secs(300);
        assert!(
            quasaq.stable_outstanding(h) > qosapi.stable_outstanding(h),
            "QuaSAQ {} vs QoS-API {}",
            quasaq.stable_outstanding(h),
            qosapi.stable_outstanding(h)
        );
    }

    #[test]
    fn lrb_beats_random() {
        let cfg = short_cfg();
        let lrb = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let random = run_throughput(SystemKind::Quasaq(CostKind::Random), &cfg);
        let h = SimTime::from_secs(300);
        assert!(
            lrb.stable_outstanding(h) > random.stable_outstanding(h),
            "LRB {} vs Random {}",
            lrb.stable_outstanding(h),
            random.stable_outstanding(h)
        );
        assert!(lrb.rejected <= random.rejected);
    }

    #[test]
    fn vdbms_has_most_outstanding_sessions() {
        // Fig 6a's signature: the system with no admission control piles
        // up the most concurrent sessions.
        let cfg = short_cfg();
        let plain = run_throughput(SystemKind::Vdbms, &cfg);
        let quasaq = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let h = SimTime::from_secs(300);
        assert!(plain.stable_outstanding(h) > quasaq.stable_outstanding(h));
    }

    #[test]
    fn stable_outstanding_truncates_odd_micros_horizon() {
        // Window start must be horizon/2 in integer microseconds (3 us for a
        // 7 us horizon), not a float reconstruction.
        let mut outstanding = Series::new();
        outstanding.push(SimTime::from_micros(2), 100.0); // before the window
        outstanding.push(SimTime::from_micros(3), 4.0); // exactly at the half
        outstanding.push(SimTime::from_micros(6), 8.0);
        let r = ThroughputResult {
            label: "synthetic".to_string(),
            outstanding,
            completions_per_min: RateCounter::new(SimDuration::from_secs(60)),
            rejects: Series::new(),
            queries: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            access: AccessStats::new(),
            mean_utility: None,
        };
        let horizon = SimTime::from_micros(7);
        assert_eq!(horizon.halved(), SimTime::from_micros(3));
        assert!((r.stable_outstanding(horizon) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn accounting_balances() {
        let r = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &short_cfg());
        assert_eq!(r.admitted + r.rejected, r.queries);
        assert!(r.completed <= r.admitted);
        assert_eq!(r.completions_per_min.total(), r.completed);
    }
}
