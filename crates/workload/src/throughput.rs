//! The throughput experiment driver (Fig 6 and Fig 7).
//!
//! Feeds the same Poisson query stream into one of the three systems —
//! plain VDBMS, VDBMS + QoS API, or VDBMS + QuaSAQ (with a selectable
//! cost model) — over the fluid session engine, and records what the
//! paper plots: outstanding sessions over time (Figs 6a, 7a),
//! accomplished jobs per minute (Fig 6b), and cumulative rejects
//! (Fig 7b).
//!
//! Since the control-plane split, this driver owns only the *data plane*
//! and the experiment accounting: the fluid engine, the fault/link
//! injectors, the patience deadlines, and the metrics. Every QoS
//! *decision* — admission, retry, brownout, failover, renegotiation —
//! comes from a [`ControlPlane`] driven through the same
//! [`Command`]/[`Effect`] vocabulary the TCP shell speaks, so an
//! in-process run and a served run make bit-identical decisions for the
//! same command sequence. The differential proptests in
//! `tests/differential.rs` hold this loop to the pre-split oracle, draw
//! for draw.

use crate::admission::{AdmissionConfig, QueueMetrics};
use crate::parallel::DomainPool;
use crate::testbed::{CostKind, Testbed, TestbedConfig};
use crate::traffic::{generate_queries, qop_class, GeneratedQuery, QopMix, TrafficConfig};
use quasaq_core::{PlanExecutor, PlanRequest, QopSecurity};
use quasaq_service::{
    AdaptPolicy, Admission, AdmitOrigin, Candidate, Command, ControlPlane, Degraded, Effect,
    PlaneConfig, Renegotiation, SessionId, SystemCore,
};
use quasaq_sim::link::SharePolicy;
use quasaq_sim::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, LevelTracker, LinkInjector, LinkPlan,
    OnlineStats, RateCounter, Series, ServerId, SimDuration, SimTime,
};
use quasaq_store::{AccessStats, MetadataEngine};
use quasaq_stream::{CongestionConfig, CongestionEdge, FluidEngine, FluidSessionId};
use quasaq_vdbms::{BaselineKind, BaselinePlanner, QueuedQuery};
use std::collections::{BTreeSet, HashMap};

/// Which system services the query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Plain VDBMS: admit everything, stream the original best-effort.
    Vdbms,
    /// VDBMS with the QoS API: reserve the full-quality stream, reject on
    /// saturation.
    VdbmsQosApi,
    /// Full QuaSAQ with the given cost model.
    Quasaq(CostKind),
}

impl SystemKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            SystemKind::Vdbms => "VDBMS".to_string(),
            SystemKind::VdbmsQosApi => "VDBMS+QoS API".to_string(),
            SystemKind::Quasaq(c) => format!("VDBMS+QuaSAQ({})", c.label()),
        }
    }
}

/// Run parameters.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Deployment.
    pub testbed: TestbedConfig,
    /// Run length (Fig 6: 1000 s; Fig 7: 7000 s).
    pub horizon: SimTime,
    /// Sampling step for the outstanding-sessions series.
    pub sample_step: SimDuration,
    /// Master seed (traffic and tie-breaking).
    pub seed: u64,
    /// Zipf skew over videos (0 = the paper's uniform access).
    pub video_skew: f64,
    /// Distribution of requested QoP parameters. `QopMix::Uniform` is the
    /// paper's stated generator (and the legacy RNG-identical path);
    /// `QopMix::PaperSkewed` is calibrated to the published Fig 6 factor.
    pub qop_mix: QopMix,
    /// Restrict QuaSAQ plans to the replica's own site (placement
    /// studies; the paper's default allows cross-site delivery).
    pub local_plans_only: bool,
    /// Queued admission front end: rejected queries wait, back off,
    /// degrade, and eventually give up, and admitted best-effort sessions
    /// are abandoned once they overrun their nominal duration by more
    /// than the patience window. `None` keeps the legacy fire-and-forget
    /// client (bit-identical to runs before the queue existed).
    pub admission: Option<AdmissionConfig>,
    /// Fault schedule: server crashes, link degradations, and disk
    /// slowdowns injected mid-run. `None` disables the injector entirely
    /// (bit-identical to runs before fault injection existed).
    pub faults: Option<FaultPlan>,
    /// Mean query inter-arrival time. `None` keeps the paper's 1 s
    /// Poisson stream; scaling studies shrink it so a hundred-server
    /// cluster actually sees load.
    pub arrival_period: Option<SimDuration>,
    /// Queries per arrival instant (flash crowds). `1` keeps the paper's
    /// one-query-per-arrival Poisson stream, bit-identical to runs before
    /// bursts existed.
    pub arrival_burst: usize,
    /// Memoize plan enumeration in the Quality Manager (QuaSAQ systems
    /// only). Admission decisions are bit-identical either way — the cache
    /// holds only the pure enumeration output, and ranking/reservation run
    /// live — so this is purely a constant-factor switch; the differential
    /// proptests hold it to that.
    pub plan_cache: bool,
    /// Within-run parallelism: step independent server domains on this
    /// many lanes (a [`crate::parallel::DomainPool`], including the
    /// calling thread). `0` or `1` keeps the serial legacy stepping. The
    /// cross-domain merge is serial either way, so results are
    /// bit-identical at every setting.
    pub domain_workers: usize,
    /// Stochastic link dynamics: a per-server capacity set-point timeline
    /// (sampled Markov/fading/diurnal trajectories or explicit
    /// set-points). Unlike `faults`, set-points also re-rate the
    /// admission view, so reservation-based systems plan against the
    /// capacity the network actually has. `None` disables the injector
    /// entirely (bit-identical to runs before link dynamics existed).
    pub links: Option<LinkPlan>,
    /// Congestion-driven graceful degradation: watch per-server offered
    /// load, renegotiate QuaSAQ sessions down the QoP ladder on sustained
    /// congestion (and back up on recovery, rate-bounded), and shed
    /// arrivals by service class while the cluster is browned out. `None`
    /// keeps every session at its admitted quality (legacy behaviour).
    pub adaptation: Option<AdaptationConfig>,
}

/// Parameters of the congestion-adaptation loop.
#[derive(Debug, Clone)]
pub struct AdaptationConfig {
    /// Congestion watermarks and dwell (hysteresis in level and time).
    pub congestion: CongestionConfig,
    /// Minimum spacing between upshifts on one server. Downshifts are
    /// never delayed; this one-sided bound is what keeps the loop from
    /// oscillating (a session upgraded at `t` cannot be re-upgraded
    /// before `t + upgrade_period`, and a downshift inside that window is
    /// counted as an oscillation).
    pub upgrade_period: SimDuration,
    /// Cap on sessions renegotiated per congestion-onset event.
    pub max_downshifts_per_event: usize,
    /// Brownout threshold: admission starts shedding by service class
    /// once at least this fraction of servers is congested.
    pub brownout_ratio: f64,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            congestion: CongestionConfig::default(),
            upgrade_period: SimDuration::from_secs(30),
            max_downshifts_per_event: 4,
            brownout_ratio: 0.25,
        }
    }
}

/// What the adaptation loop did over one run. `PartialEq` compares floats
/// bit-for-bit for the serial-vs-parallel determinism checks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationMetrics {
    /// Congestion-onset events (a server crossing the high watermark and
    /// dwelling there).
    pub congestion_events: u64,
    /// Server-seconds spent in the congested state.
    pub congested_secs: f64,
    /// Sessions renegotiated down the QoP ladder by the adaptation loop.
    pub downshifts: u64,
    /// Sessions renegotiated back toward their original request after a
    /// server cleared.
    pub upshifts: u64,
    /// Downshifts that undid an upshift within one `upgrade_period` —
    /// the loop hunting instead of settling.
    pub oscillations: u64,
    /// Estimated QoS-violation exposure avoided by downshifts: the bytes
    /// each renegotiation took off the wire, over the victim server's
    /// effective capacity at that instant.
    pub violation_secs_avoided: f64,
    /// Brownout admissions served one ladder step below their request.
    pub brownout_degraded: u64,
    /// Arrivals turned away by brownout shedding (Economy class, plus
    /// degrade-then-reject failures).
    pub brownout_rejected: u64,
}

impl ThroughputConfig {
    /// The Fig 6 configuration (1000 s horizon).
    pub fn fig6() -> Self {
        ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(1000),
            sample_step: SimDuration::from_secs(10),
            seed: 7,
            video_skew: 0.0,
            qop_mix: QopMix::Uniform,
            local_plans_only: false,
            admission: None,
            faults: None,
            arrival_period: None,
            arrival_burst: 1,
            plan_cache: false,
            domain_workers: 0,
            links: None,
            adaptation: None,
        }
    }

    /// The Fig 7 configuration (7000 s horizon).
    pub fn fig7() -> Self {
        ThroughputConfig { horizon: SimTime::from_secs(7000), ..Self::fig6() }
    }

    /// The Fig 6 configuration behind the queued admission front end with
    /// default backoff and patience.
    pub fn queued() -> Self {
        ThroughputConfig { admission: Some(AdmissionConfig::default()), ..Self::fig6() }
    }

    /// The availability-under-faults configuration: Fig 6 load with the
    /// queued front end, one server crashing at t = 1000 s and restarting
    /// at t = 2000 s inside a 3000 s horizon.
    pub fn availability() -> Self {
        ThroughputConfig {
            horizon: SimTime::from_secs(3000),
            faults: Some(FaultPlan::crash_restart(
                ServerId(0),
                SimTime::from_secs(1000),
                SimTime::from_secs(2000),
            )),
            ..Self::queued()
        }
    }

    /// The degradation-under-congestion configuration: Fig 6 load while
    /// every server's link follows a sampled Markov good/degraded/bad
    /// trajectory, with the adaptation loop renegotiating sessions and
    /// browning out admission under sustained overload.
    pub fn stochastic() -> Self {
        let base = Self::fig6();
        let servers = ServerId::first_n(base.testbed.servers);
        ThroughputConfig {
            links: Some(LinkPlan::sample(
                base.seed,
                servers,
                base.horizon,
                quasaq_sim::LinkModel::Markov {
                    factors: [1.0, 0.5, 0.2],
                    dwell: [
                        SimDuration::from_secs(120),
                        SimDuration::from_secs(60),
                        SimDuration::from_secs(30),
                    ],
                },
            )),
            adaptation: Some(AdaptationConfig::default()),
            ..base
        }
    }
}

/// Robustness accounting for a fault-injected run. `PartialEq` compares
/// floats bit-for-bit for the serial-vs-parallel determinism checks.
///
/// Every interrupted session reaches exactly one fate, so
/// `interrupted == failed_over + recovered + dropped` at the end of a
/// run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultMetrics {
    /// Sessions cut mid-stream by a server crash.
    pub interrupted: u64,
    /// Interrupted sessions immediately re-admitted on a surviving
    /// replica site, resuming their remaining bytes.
    pub failed_over: u64,
    /// Failovers that renegotiated down the QoP ladder because no
    /// survivor could carry the original quality.
    pub failover_degraded: u64,
    /// Interrupted sessions that re-entered the admission queue after
    /// failover found no feasible replica.
    pub requeued: u64,
    /// Requeued sessions eventually re-serviced (restarting from the
    /// beginning — a queue re-entry is a restart, not a resume).
    pub recovered: u64,
    /// Interrupted sessions lost for good: no survivor, no queue (or
    /// dropped by it), or still waiting at the horizon.
    pub dropped: u64,
    /// Seconds from interruption to re-service, over every session that
    /// was re-serviced (0 for an instant failover).
    pub recovery: OnlineStats,
    /// Session-seconds streamed on servers whose effective capacity was
    /// degraded below nominal (QoS-violation exposure).
    pub qos_violation_secs: f64,
}

/// Everything the paper plots for one run. `PartialEq` compares every
/// field (floats bit-for-bit via their numeric equality), which is what
/// the parallel-runner determinism checks rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputResult {
    /// System label.
    pub label: String,
    /// Outstanding sessions sampled over time (Figs 6a, 7a).
    pub outstanding: Series,
    /// Completed jobs per minute (Fig 6b).
    pub completions_per_min: RateCounter,
    /// Cumulative rejects over time (Fig 7b).
    pub rejects: Series,
    /// Total queries issued.
    pub queries: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Queries rejected.
    pub rejected: u64,
    /// Sessions completed within the horizon.
    pub completed: u64,
    /// Which video was served from which server, per admitted session
    /// (drives the online-migration extension).
    pub access: AccessStats,
    /// Mean perceptual utility of admitted plans (QuaSAQ systems only).
    pub mean_utility: Option<f64>,
    /// Queue metrics when the admission front end was enabled.
    pub queue: Option<QueueMetrics>,
    /// Robustness metrics when fault injection or link dynamics were
    /// enabled.
    pub faults: Option<FaultMetrics>,
    /// Adaptation metrics when the congestion loop was enabled.
    pub degradation: Option<DegradationMetrics>,
}

impl ThroughputResult {
    /// Mean outstanding sessions over the stable stage (second half of the
    /// run).
    pub fn stable_outstanding(&self, horizon: SimTime) -> f64 {
        self.outstanding
            .window_mean(horizon.halved(), horizon + SimDuration::from_secs(1))
            .unwrap_or(0.0)
    }

    /// p95 admission wait in seconds (from the queue's quantile sketch;
    /// `None` without the front end or when nothing was admitted).
    pub fn queue_wait_p95(&self) -> Option<f64> {
        self.queue.as_ref().and_then(|q| q.wait.p95())
    }

    /// p99 admission wait in seconds (see [`Self::queue_wait_p95`]).
    pub fn queue_wait_p99(&self) -> Option<f64> {
        self.queue.as_ref().and_then(|q| q.wait.p99())
    }
}

/// Dense per-session side table indexed by [`FluidSessionId`] (the fluid
/// engine allocates ids contiguously from 0, so a `Vec` replaces the old
/// session-keyed hash maps on the admission/completion hot path).
struct PerSession<T>(Vec<Option<T>>);

impl<T> PerSession<T> {
    fn new() -> Self {
        PerSession(Vec::new())
    }

    fn insert(&mut self, id: FluidSessionId, value: T) {
        if id.0 >= self.0.len() {
            self.0.resize_with(id.0 + 1, || None);
        }
        self.0[id.0] = Some(value);
    }

    fn remove(&mut self, id: FluidSessionId) -> Option<T> {
        self.0.get_mut(id.0).and_then(Option::take)
    }
}

/// Two-way binding between the fluid engine's session ids (the data
/// plane) and the control plane's session handles. Renegotiations retire
/// the fluid id but keep the control-plane handle, so neither side can be
/// the other's key.
struct SessionMap {
    /// Fluid id → control-plane session.
    session_of: PerSession<SessionId>,
    /// Control-plane session → current fluid id (dense: plane ids
    /// allocate from 0).
    fluid_of: Vec<Option<FluidSessionId>>,
}

impl SessionMap {
    fn new() -> Self {
        SessionMap { session_of: PerSession::new(), fluid_of: Vec::new() }
    }

    fn bind(&mut self, fluid: FluidSessionId, session: SessionId) {
        self.session_of.insert(fluid, session);
        let i = session.0 as usize;
        if i >= self.fluid_of.len() {
            self.fluid_of.resize(i + 1, None);
        }
        self.fluid_of[i] = Some(fluid);
    }

    /// Drops the binding by fluid id (completion, patience cancel,
    /// crash), returning the control-plane session to tear down.
    fn unbind(&mut self, fluid: FluidSessionId) -> Option<SessionId> {
        let session = self.session_of.remove(fluid)?;
        self.fluid_of[session.0 as usize] = None;
        Some(session)
    }

    /// Drops the binding by control-plane session (renegotiation),
    /// returning the fluid id to cancel.
    fn take_fluid(&mut self, session: SessionId) -> Option<FluidSessionId> {
        let fluid = self.fluid_of.get_mut(session.0 as usize)?.take()?;
        self.session_of.remove(fluid);
        Some(fluid)
    }

    fn get(&self, fluid: FluidSessionId) -> Option<SessionId> {
        self.session_of.0.get(fluid.0).and_then(|s| *s)
    }
}

/// Runs one system against the shared query stream on the (process-wide,
/// immutably shared) testbed for `cfg.testbed`. Runs never mutate the
/// testbed, so N system-variants over one deployment pay for catalog
/// generation once; callers that *do* mutate the replica layout build
/// their own testbed and use [`run_throughput_on`].
pub fn run_throughput(system: SystemKind, cfg: &ThroughputConfig) -> ThroughputResult {
    let testbed = Testbed::shared(cfg.testbed.clone());
    run_throughput_on(&testbed, system, cfg)
}

/// Runs one system against the query stream on an existing testbed (so
/// callers can mutate the replica layout between runs, e.g. for the
/// online-migration extension).
pub fn run_throughput_on(
    testbed: &Testbed,
    system: SystemKind,
    cfg: &ThroughputConfig,
) -> ThroughputResult {
    let queries = arrival_stream(testbed, cfg);
    let core = build_core(testbed, system, cfg);

    let adapt = cfg.adaptation.clone();
    let adapt_on = adapt.is_some();
    let faults_on = cfg.faults.is_some();
    // Per-session request context is needed by both the crash-failover
    // path and the adaptation loop.
    let track_ctx = faults_on || adapt_on;
    let queue_on = cfg.admission.is_some();

    // The control plane makes every decision this driver used to make
    // inline, consuming the identical RNG stream in the identical order.
    let mut plane = ControlPlane::new(
        core,
        PlaneConfig {
            seed: cfg.seed ^ 0x9e37_79b9,
            admission: cfg.admission.clone(),
            adaptation: adapt.as_ref().map(|a| AdaptPolicy {
                upgrade_period: a.upgrade_period,
                max_downshifts_per_event: a.max_downshifts_per_event,
            }),
            track_ctx,
        },
    );
    let engine = &testbed.engine;
    // One scratch vector for every command's effects.
    let mut effects: Vec<Effect> = Vec::new();

    // All systems pace sessions at their stream rate on fair-share links;
    // reservation-based systems enforce admission in the QoS API, so the
    // link never oversubscribes for them.
    let mut fluid =
        FluidEngine::new(testbed.servers(), SharePolicy::FairShare, cfg.testbed.link_capacity_bps);

    // Within-run parallelism: phase A of every advance (per-domain fluid
    // stepping) runs on the pool; the merge stays serial, so the event
    // order — and every downstream float — is identical to a serial run.
    let pool = (cfg.domain_workers > 1).then(|| DomainPool::new(cfg.domain_workers));
    macro_rules! advance_fluid {
        ($t:expr) => {
            match &pool {
                Some(p) => fluid.advance_domains($t, p),
                None => fluid.advance_to($t),
            }
        };
    }

    let patience = cfg.admission.as_ref().map(|a| a.patience);
    // Mid-stream give-up deadlines, ordered for the event loop plus a
    // reverse index for completion-time removal. Both stay empty when the
    // front end is disabled, so the legacy event sequence is untouched.
    let mut deadlines: BTreeSet<(SimTime, FluidSessionId)> = BTreeSet::new();
    let mut deadline_of: PerSession<SimTime> = PerSession::new();

    // Fault injection. The timeline is empty when `cfg.faults` is `None`,
    // so the legacy event sequence — and every RNG draw — is untouched.
    // The testbed itself is immutable and shared across runs; all fault
    // state (who is down, which reservations died, the degraded
    // capacities inside this run's own fluid engine) lives here or in the
    // plane.
    let fault_plan = cfg.faults.clone().unwrap_or_default();
    let mut injector = FaultInjector::new(&fault_plan);
    let mut fm = FaultMetrics::default();
    // Overlapping windows compose: crashes nest by depth, capacity
    // factors multiply (in stable order, so the float product is a pure
    // function of the plan).
    let mut crash_depth: HashMap<ServerId, u32> = HashMap::new();
    let mut link_factors: HashMap<ServerId, Vec<f64>> = HashMap::new();
    let mut disk_factors: HashMap<ServerId, Vec<f64>> = HashMap::new();
    let mut impaired: BTreeSet<ServerId> = BTreeSet::new();
    let mut violation_t = SimTime::ZERO;

    // Stochastic link dynamics: a (time, seq)-ordered set-point timeline,
    // one dynamic factor per server composed into the same effective
    // capacity the fault windows feed. Empty when `cfg.links` is `None`,
    // so the legacy event sequence is untouched.
    let link_plan = cfg.links.clone().unwrap_or_default();
    let mut link_injector = LinkInjector::new(&link_plan);
    let links_on = cfg.links.is_some();
    let mut dyn_factors: HashMap<ServerId, f64> = HashMap::new();
    // QoS-violation exposure is accounted whenever anything can degrade
    // capacity mid-run.
    let watch_capacity = faults_on || links_on;

    // The congestion-adaptation loop.
    if let Some(a) = &adapt {
        fluid.enable_congestion(a.congestion);
    }
    let mut dm = DegradationMetrics::default();
    let mut congested_t = SimTime::ZERO;
    let num_servers = cfg.testbed.servers as usize;

    let mut map = SessionMap::new();
    let mut outstanding = LevelTracker::new();
    let mut completions = RateCounter::new(SimDuration::from_secs(60));
    let mut rejects = Series::new();
    let mut rejected = 0u64;
    let mut admitted = 0u64;
    let mut completed = 0u64;
    let mut access = AccessStats::new();
    let mut utility_sum = 0.0f64;
    let mut utility_n = 0u64;

    let mut qi = 0usize;
    loop {
        let tq = queries.get(qi).map(|q| q.at);
        let tf = fluid.next_event().filter(|&t| t <= cfg.horizon);
        let tr = plane.next_ready().filter(|&t| t <= cfg.horizon);
        let ta = deadlines.iter().next().map(|&(t, _)| t).filter(|&t| t <= cfg.horizon);
        let tx = injector.next_at().filter(|&t| t <= cfg.horizon);
        let tl = link_injector.next_at().filter(|&t| t <= cfg.horizon);
        let tc = fluid.congestion_next_at().filter(|&t| t <= cfg.horizon);
        let Some(t) = [tq, tf, tr, ta, tx, tl, tc].into_iter().flatten().min() else { break };
        if t > cfg.horizon {
            break;
        }
        // The active set only changes at processed instants, so the
        // violation exposure over [violation_t, t] is exact.
        if watch_capacity && t > violation_t {
            for &s in &impaired {
                fm.qos_violation_secs +=
                    fluid.active_on(s) as f64 * (t - violation_t).as_secs_f64();
            }
            violation_t = t;
        }
        // Same argument for congestion exposure: the congested set only
        // flips inside `poll_congestion`, which runs at processed
        // instants.
        if adapt_on && t > congested_t {
            dm.congested_secs += fluid.congested_servers() as f64 * (t - congested_t).as_secs_f64();
            congested_t = t;
        }
        advance_fluid!(t);
        handle_done(
            fluid.drain_completions(),
            engine,
            &mut plane,
            &mut map,
            &mut effects,
            &mut outstanding,
            &mut completions,
            &mut completed,
            &mut deadlines,
            &mut deadline_of,
        );
        // Mid-stream patience: cancel sessions that overran their nominal
        // duration by more than the patience window. Completions at the
        // same instant were drained first, so finishing exactly on the
        // deadline counts as done.
        while let Some(&(dt, sid)) = deadlines.iter().next() {
            if dt > t {
                break;
            }
            deadlines.remove(&(dt, sid));
            deadline_of.remove(sid);
            fluid.cancel_session(t, sid);
            outstanding.adjust(t, -1);
            let session = map.unbind(sid).expect("deadline sessions are bound");
            effects.clear();
            plane.handle_into(
                engine,
                Command::Teardown { session, abandoned: true, now: t },
                &mut effects,
            );
        }
        // Fault edges due now fire after completions and patience (a
        // session finishing at the crash instant made it) and before
        // retries and the new arrival (which must see the post-crash
        // world).
        while let Some(ev) = injector.pop_due(t) {
            match ev {
                FaultEvent::Begin(spec) => match spec.kind {
                    FaultKind::ServerCrash => {
                        let depth = crash_depth.entry(spec.server).or_insert(0);
                        *depth += 1;
                        if *depth > 1 {
                            continue;
                        }
                        // Bar the dead server from admission and
                        // bulk-release its reservations so new admissions
                        // route around it...
                        plane.handle_into(
                            engine,
                            Command::ServerDown { server: spec.server },
                            &mut effects,
                        );
                        // ...then displace its in-flight sessions and let
                        // the plane try to fail each one over.
                        for (sid, remaining) in fluid.fail_server(t, spec.server) {
                            outstanding.adjust(t, -1);
                            fm.interrupted += 1;
                            if let Some(dl) = deadline_of.remove(sid) {
                                deadlines.remove(&(dl, sid));
                            }
                            let session = map.unbind(sid).expect("live sessions are bound");
                            effects.clear();
                            plane.handle_into(
                                engine,
                                Command::Displace { session, remaining, now: t },
                                &mut effects,
                            );
                            for e in effects.drain(..) {
                                match e {
                                    Effect::Admitted(adm) => {
                                        fm.failed_over += 1;
                                        if let Degraded::Failover { steps } = adm.degraded {
                                            if steps > 0 {
                                                fm.failover_degraded += 1;
                                            }
                                        }
                                        fm.recovery.push(0.0);
                                        outstanding.adjust(t, 1);
                                        access.record(adm.video, adm.server);
                                        if let Some(u) = adm.utility {
                                            utility_sum += u;
                                            utility_n += 1;
                                        }
                                        start_stream(
                                            &mut fluid,
                                            &mut map,
                                            &mut deadlines,
                                            &mut deadline_of,
                                            patience,
                                            t,
                                            &adm,
                                        );
                                    }
                                    Effect::Requeued => fm.requeued += 1,
                                    Effect::Dropped => fm.dropped += 1,
                                    other => unreachable!("displace produced {other:?}"),
                                }
                            }
                        }
                    }
                    FaultKind::LinkDegradation { factor } => {
                        link_factors.entry(spec.server).or_default().push(factor);
                        apply_capacity(
                            &mut fluid,
                            &mut impaired,
                            &link_factors,
                            &disk_factors,
                            &dyn_factors,
                            &cfg.testbed,
                            t,
                            spec.server,
                        );
                    }
                    FaultKind::DiskSlowdown { factor } => {
                        disk_factors.entry(spec.server).or_default().push(factor);
                        apply_capacity(
                            &mut fluid,
                            &mut impaired,
                            &link_factors,
                            &disk_factors,
                            &dyn_factors,
                            &cfg.testbed,
                            t,
                            spec.server,
                        );
                    }
                },
                FaultEvent::End(spec) => match spec.kind {
                    FaultKind::ServerCrash => {
                        let depth = crash_depth.get_mut(&spec.server).expect("crash began");
                        *depth -= 1;
                        if *depth == 0 {
                            plane.handle_into(
                                engine,
                                Command::ServerUp { server: spec.server },
                                &mut effects,
                            );
                        }
                    }
                    FaultKind::LinkDegradation { factor } => {
                        remove_factor(&mut link_factors, spec.server, factor);
                        apply_capacity(
                            &mut fluid,
                            &mut impaired,
                            &link_factors,
                            &disk_factors,
                            &dyn_factors,
                            &cfg.testbed,
                            t,
                            spec.server,
                        );
                    }
                    FaultKind::DiskSlowdown { factor } => {
                        remove_factor(&mut disk_factors, spec.server, factor);
                        apply_capacity(
                            &mut fluid,
                            &mut impaired,
                            &link_factors,
                            &disk_factors,
                            &dyn_factors,
                            &cfg.testbed,
                            t,
                            spec.server,
                        );
                    }
                },
            }
        }
        // Link set-points due now land after fault edges (a set-point and
        // a fault window at one instant compose in plan order) and before
        // retries and arrivals, which must see the re-rated world. Unlike
        // fault windows, set-points also move the admission view: the
        // reservation systems should plan against the capacity the
        // network actually has.
        while let Some(spec) = link_injector.pop_due(t) {
            dyn_factors.insert(spec.server, spec.factor);
            let net = apply_capacity(
                &mut fluid,
                &mut impaired,
                &link_factors,
                &disk_factors,
                &dyn_factors,
                &cfg.testbed,
                t,
                spec.server,
            );
            plane.handle_into(
                engine,
                Command::SetNetCapacity { server: spec.server, bps: net },
                &mut effects,
            );
        }
        // Retries due now run before the new arrival: they have waited
        // longer.
        if queue_on {
            effects.clear();
            plane.handle_into(engine, Command::Tick { now: t }, &mut effects);
            for e in effects.drain(..) {
                match e {
                    Effect::Admitted(adm) => {
                        match adm.origin {
                            AdmitOrigin::Recovery { interrupted_at } => {
                                // A displaced session re-serviced from the
                                // queue was admitted once already: count
                                // its recovery, not a second admission.
                                fm.recovered += 1;
                                fm.recovery.push((t - interrupted_at).as_secs_f64());
                            }
                            _ => admitted += 1,
                        }
                        outstanding.adjust(t, 1);
                        access.record(adm.video, adm.server);
                        if let Some(u) = adm.utility {
                            utility_sum += u;
                            utility_n += 1;
                        }
                        start_stream(
                            &mut fluid,
                            &mut map,
                            &mut deadlines,
                            &mut deadline_of,
                            patience,
                            t,
                            &adm,
                        );
                    }
                    Effect::Rejected { .. } => {
                        rejected += 1;
                        rejects.push(t, rejected as f64);
                    }
                    Effect::Dropped => fm.dropped += 1,
                    other => unreachable!("tick produced {other:?}"),
                }
            }
        }
        if tq == Some(t) {
            // Every query arriving at this exact instant forms one batch (a
            // flash-crowd burst under `arrival_burst > 1`; always a single
            // query for Poisson arrivals). With the plan cache on, the
            // bulk-admit path warms the cache for the whole batch first —
            // requests sorted by cache key, each distinct enumeration done
            // once — before the queries admit sequentially in arrival
            // order. Prefetching consumes no RNG and reserves nothing, so
            // the decisions are bit-identical to cold processing.
            let batch_end = qi + queries[qi..].iter().take_while(|q| q.at == t).count();
            if batch_end - qi > 1 && plane.wants_prefetch() {
                let requests: Vec<PlanRequest> = queries[qi..batch_end]
                    .iter()
                    .map(|q| PlanRequest {
                        video: q.video,
                        qos: q.qos.clone(),
                        security: QopSecurity::Open,
                    })
                    .collect();
                plane.handle_into(engine, Command::Prefetch { requests }, &mut effects);
            }
            // Brownout: once enough of the cluster sits congested, the
            // front door sheds by service class — Economy requests are
            // refused outright, richer requests are admitted one ladder
            // step down or refused, and nothing queues (a browned-out
            // system must shed load now, not promise it later). The
            // congested set is frozen for the whole instant (it only
            // moves in the end-of-instant poll), so every query in a
            // burst sees the same policy.
            let brownout_now = adapt.as_ref().is_some_and(|a| {
                let congested = fluid.congested_servers();
                congested > 0 && congested as f64 >= a.brownout_ratio * num_servers as f64
            });
            while qi < batch_end {
                let q = &queries[qi];
                qi += 1;
                let query = QueuedQuery { video: q.video, qos: q.qos.clone() };
                effects.clear();
                plane.handle_into(
                    engine,
                    Command::Admit {
                        query,
                        class: qop_class(&q.qop),
                        brownout: brownout_now,
                        now: t,
                    },
                    &mut effects,
                );
                for e in effects.drain(..) {
                    match e {
                        Effect::Admitted(adm) => {
                            if adm.degraded == Degraded::Brownout {
                                dm.brownout_degraded += 1;
                            }
                            admitted += 1;
                            outstanding.adjust(t, 1);
                            access.record(adm.video, adm.server);
                            if let Some(u) = adm.utility {
                                utility_sum += u;
                                utility_n += 1;
                            }
                            start_stream(
                                &mut fluid,
                                &mut map,
                                &mut deadlines,
                                &mut deadline_of,
                                patience,
                                t,
                                &adm,
                            );
                        }
                        Effect::Rejected { reason, .. } => {
                            if reason.is_brownout() {
                                dm.brownout_rejected += 1;
                            }
                            rejected += 1;
                            rejects.push(t, rejected as f64);
                        }
                        Effect::Queued => {}
                        other => unreachable!("admit produced {other:?}"),
                    }
                }
            }
        }
        // End-of-instant congestion poll: demand ratios only move at
        // processed instants (session adds, completions, cancellations,
        // re-rates all happen above), so polling here sees every edge
        // exactly when it happens; the `tc` time source wakes the loop
        // for pure dwell expiries. Runs after the arrivals so a burst
        // that congests a server starts its dwell clock at this instant.
        // Adaptation itself moves demand, so the poll loops until a quiet
        // round — bounded, because upshifts are rate-limited and
        // downshifts stop at the ladder floor.
        if adapt_on {
            for _ in 0..4 {
                let events = fluid.poll_congestion(t);
                if events.is_empty() {
                    break;
                }
                for ev in events {
                    // The plane decides who to renegotiate and to what;
                    // this driver reports the candidates (with their
                    // data-plane backlogs) and mirrors the outcomes into
                    // the fluid engine.
                    let candidates: Vec<Candidate> = fluid
                        .sessions_on(ev.server)
                        .into_iter()
                        .filter_map(|sid| {
                            map.get(sid).map(|session| Candidate {
                                session,
                                backlog: fluid.session_backlog(sid),
                            })
                        })
                        .collect();
                    match ev.edge {
                        CongestionEdge::Onset => {
                            dm.congestion_events += 1;
                            let (_, effective) = effective_capacity(
                                &link_factors,
                                &disk_factors,
                                &dyn_factors,
                                &cfg.testbed,
                                ev.server,
                            );
                            effects.clear();
                            plane.handle_into(
                                engine,
                                Command::CongestionOnset { server: ev.server, candidates, now: t },
                                &mut effects,
                            );
                            for e in effects.drain(..) {
                                let Effect::Renegotiated(r) = e else {
                                    unreachable!("onset produced a non-renegotiation")
                                };
                                dm.downshifts += 1;
                                if r.hunting {
                                    dm.oscillations += 1;
                                }
                                dm.violation_secs_avoided +=
                                    r.bytes_saved.max(0.0) / effective.max(1) as f64;
                                apply_renegotiation(
                                    &mut fluid,
                                    &mut map,
                                    &mut deadlines,
                                    &mut deadline_of,
                                    patience,
                                    &mut access,
                                    t,
                                    &r,
                                );
                            }
                        }
                        CongestionEdge::Cleared => {
                            effects.clear();
                            plane.handle_into(
                                engine,
                                Command::CongestionCleared {
                                    server: ev.server,
                                    candidates,
                                    now: t,
                                },
                                &mut effects,
                            );
                            for e in effects.drain(..) {
                                let Effect::Renegotiated(r) = e else {
                                    unreachable!("cleared produced a non-renegotiation")
                                };
                                dm.upshifts += 1;
                                apply_renegotiation(
                                    &mut fluid,
                                    &mut map,
                                    &mut deadlines,
                                    &mut deadline_of,
                                    patience,
                                    &mut access,
                                    t,
                                    &r,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    if watch_capacity && cfg.horizon > violation_t {
        for &s in &impaired {
            fm.qos_violation_secs +=
                fluid.active_on(s) as f64 * (cfg.horizon - violation_t).as_secs_f64();
        }
    }
    if adapt_on && cfg.horizon > congested_t {
        dm.congested_secs +=
            fluid.congested_servers() as f64 * (cfg.horizon - congested_t).as_secs_f64();
    }
    advance_fluid!(cfg.horizon);
    handle_done(
        fluid.drain_completions(),
        engine,
        &mut plane,
        &mut map,
        &mut effects,
        &mut outstanding,
        &mut completions,
        &mut completed,
        &mut deadlines,
        &mut deadline_of,
    );
    // Whoever is still waiting never got served: fresh queries fold into
    // the rejected count so `admitted + rejected == queries` holds;
    // displaced sessions still waiting are lost to the fault accounting.
    if queue_on {
        effects.clear();
        plane.handle_into(engine, Command::Finish, &mut effects);
        for e in effects.drain(..) {
            let Effect::Finished { pending, displaced_pending } = e else { continue };
            if pending > 0 {
                rejected += pending;
                rejects.push(cfg.horizon, rejected as f64);
            }
            fm.dropped += displaced_pending;
        }
    }

    let (core, queue_metrics) = plane.into_parts();
    // Env-gated diagnostic (EXPERIMENTS.md, plan-cache study): end-of-run
    // cache counters on stderr, leaving the returned result untouched.
    if std::env::var_os("QUASAQ_CACHE_DEBUG").is_some() {
        if let SystemCore::Quasaq { manager, .. } = &core {
            if let Some(s) = manager.plan_cache_stats() {
                eprintln!("cache stats: {s:?}");
            }
        }
    }
    ThroughputResult {
        label: system.label(),
        outstanding: outstanding.sample(cfg.sample_step, cfg.horizon),
        completions_per_min: completions,
        rejects,
        queries: queries.len() as u64,
        admitted,
        rejected,
        completed,
        access,
        mean_utility: (utility_n > 0).then(|| utility_sum / utility_n as f64),
        queue: queue_metrics,
        faults: watch_capacity.then_some(fm),
        degradation: adapt_on.then_some(dm),
    }
}

/// The exact query stream a config drives: the paper's Poisson process
/// over the testbed's catalog, seeded from the run seed. Public so the
/// runtime shell's load generator can replay the same arrivals a driver
/// run would see.
pub fn arrival_stream(testbed: &Testbed, cfg: &ThroughputConfig) -> Vec<GeneratedQuery> {
    let mut traffic = TrafficConfig::paper(testbed.library.len(), cfg.horizon);
    traffic.video_skew = cfg.video_skew;
    traffic.qop_mix = cfg.qop_mix;
    if let Some(period) = cfg.arrival_period {
        traffic.mean_interarrival = period;
    }
    traffic.burst = cfg.arrival_burst.max(1);
    generate_queries(cfg.seed ^ 0x51ab_17e5, &traffic)
}

/// The system under test as a control-plane core, built exactly the way
/// the in-process driver builds it. Public so the TCP shell serves the
/// same planners and cost models the experiments measure.
pub fn build_core(testbed: &Testbed, system: SystemKind, cfg: &ThroughputConfig) -> SystemCore {
    match system {
        SystemKind::Vdbms => {
            SystemCore::Plain { planner: BaselinePlanner::new(BaselineKind::Plain) }
        }
        SystemKind::VdbmsQosApi => SystemCore::QosApi {
            planner: BaselinePlanner::new(BaselineKind::WithQosApi),
            api: testbed.qos_api(),
            headroom: cfg.testbed.cost.reservation_headroom,
        },
        SystemKind::Quasaq(kind) => {
            let mut manager = testbed.quality_manager_with(
                kind,
                quasaq_core::GeneratorConfig {
                    cost: cfg.testbed.cost,
                    allow_remote: !cfg.local_plans_only,
                    ..quasaq_core::GeneratorConfig::default()
                },
            );
            manager.set_plan_caching(cfg.plan_cache);
            SystemCore::Quasaq {
                manager,
                executor: PlanExecutor { cost: cfg.testbed.cost, ..PlanExecutor::default() },
            }
        }
    }
}

/// A server's composed capacity right now: the fault windows' factors
/// multiplied with the link plan's dynamic set-point. Returns
/// `(net, effective)` — the network side alone (what the admission view
/// tracks on the links path) and `min(net, disk)` (what the fluid link
/// carries; a slow disk starves the link). Both floored at 1 byte/s so
/// in-flight transfers keep draining. The dynamic factor multiplies last
/// (and defaults to exactly 1.0), so fault-only runs compute the same
/// float product they always did.
fn effective_capacity(
    link_factors: &HashMap<ServerId, Vec<f64>>,
    disk_factors: &HashMap<ServerId, Vec<f64>>,
    dyn_factors: &HashMap<ServerId, f64>,
    testbed: &TestbedConfig,
    server: ServerId,
) -> (f64, u64) {
    let product =
        |m: &HashMap<ServerId, Vec<f64>>| m.get(&server).map_or(1.0, |v| v.iter().product::<f64>());
    let net = testbed.link_capacity_bps as f64
        * product(link_factors)
        * dyn_factors.get(&server).copied().unwrap_or(1.0);
    let disk = testbed.disk_bps * product(disk_factors);
    (net.max(1.0), (net.min(disk).max(1.0)) as u64)
}

/// Re-applies a server's effective capacity after its fault factors or
/// dynamic set-point changed, and tracks QoS-violation exposure via the
/// impaired set. Returns the network-side capacity for the admission
/// view.
#[allow(clippy::too_many_arguments)]
fn apply_capacity(
    fluid: &mut FluidEngine,
    impaired: &mut BTreeSet<ServerId>,
    link_factors: &HashMap<ServerId, Vec<f64>>,
    disk_factors: &HashMap<ServerId, Vec<f64>>,
    dyn_factors: &HashMap<ServerId, f64>,
    testbed: &TestbedConfig,
    now: SimTime,
    server: ServerId,
) -> f64 {
    let (net, effective) =
        effective_capacity(link_factors, disk_factors, dyn_factors, testbed, server);
    fluid.set_link_capacity(now, server, effective);
    if effective < testbed.link_capacity_bps {
        impaired.insert(server);
    } else {
        impaired.remove(&server);
    }
    net
}

/// Drops one ended fault window's factor (the first matching entry, so
/// overlapping identical windows compose and unwind deterministically).
fn remove_factor(factors: &mut HashMap<ServerId, Vec<f64>>, server: ServerId, factor: f64) {
    let v = factors.get_mut(&server).expect("fault window began");
    let i = v.iter().position(|&f| f == factor).expect("factor recorded at begin");
    v.remove(i);
}

/// Mirrors an admission into the data plane: starts the fluid stream,
/// binds the ids, and arms the patience deadline. Under the fair-share
/// policy the link always accepts a new session (it stretches instead of
/// refusing), so this cannot fail.
fn start_stream(
    fluid: &mut FluidEngine,
    map: &mut SessionMap,
    deadlines: &mut BTreeSet<(SimTime, FluidSessionId)>,
    deadline_of: &mut PerSession<SimTime>,
    patience: Option<SimDuration>,
    now: SimTime,
    adm: &Admission,
) {
    let sid =
        fluid.add_session(now, adm.server, adm.bytes, adm.rate_bps).expect("fair-share admits");
    map.bind(sid, adm.session);
    if let Some(p) = patience {
        let dl = now + adm.nominal + p;
        deadlines.insert((dl, sid));
        deadline_of.insert(sid, dl);
    }
}

/// Mirrors a renegotiation into the data plane: replaces the fluid
/// session with the remaining bytes at the new rate and rebinds every
/// per-session table to the new id (cancel + re-add allocates fresh).
#[allow(clippy::too_many_arguments)]
fn apply_renegotiation(
    fluid: &mut FluidEngine,
    map: &mut SessionMap,
    deadlines: &mut BTreeSet<(SimTime, FluidSessionId)>,
    deadline_of: &mut PerSession<SimTime>,
    patience: Option<SimDuration>,
    access: &mut AccessStats,
    now: SimTime,
    r: &Renegotiation,
) {
    let old = map.take_fluid(r.session).expect("renegotiated sessions are live");
    fluid.cancel_session(now, old);
    fluid.forget_session(old);
    let new_sid = fluid.add_session(now, r.server, r.bytes, r.rate_bps).expect("fair-share admits");
    map.bind(new_sid, r.session);
    if let Some(dl) = deadline_of.remove(old) {
        deadlines.remove(&(dl, old));
    }
    if let Some(p) = patience {
        let dl = now + r.nominal + p;
        deadlines.insert((dl, new_sid));
        deadline_of.insert(new_sid, dl);
    }
    access.record(r.video, r.server);
}

/// Completion sweep: retire each finished stream from the side tables and
/// tear its control-plane session down (releasing the reservation).
#[allow(clippy::too_many_arguments)]
fn handle_done(
    done: Vec<quasaq_stream::FluidDone>,
    engine: &MetadataEngine,
    plane: &mut ControlPlane,
    map: &mut SessionMap,
    effects: &mut Vec<Effect>,
    outstanding: &mut LevelTracker,
    completions: &mut RateCounter,
    completed: &mut u64,
    deadlines: &mut BTreeSet<(SimTime, FluidSessionId)>,
    deadline_of: &mut PerSession<SimTime>,
) {
    for d in done {
        outstanding.adjust(d.at, -1);
        completions.record(d.at);
        *completed += 1;
        if let Some(dl) = deadline_of.remove(d.id) {
            deadlines.remove(&(dl, d.id));
        }
        let session = map.unbind(d.id).expect("completed sessions are bound");
        effects.clear();
        plane.handle_into(
            engine,
            Command::Teardown { session, abandoned: false, now: d.at },
            effects,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg() -> ThroughputConfig {
        ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(300),
            sample_step: SimDuration::from_secs(10),
            seed: 11,
            video_skew: 0.0,
            qop_mix: QopMix::Uniform,
            local_plans_only: false,
            admission: None,
            faults: None,
            arrival_period: None,
            arrival_burst: 1,
            plan_cache: false,
            domain_workers: 0,
            links: None,
            adaptation: None,
        }
    }

    #[test]
    fn plain_vdbms_admits_everything() {
        let r = run_throughput(SystemKind::Vdbms, &short_cfg());
        assert_eq!(r.rejected, 0);
        assert_eq!(r.admitted, r.queries);
        assert!(r.stable_outstanding(SimTime::from_secs(300)) > 0.0);
    }

    #[test]
    fn qos_api_rejects_under_load() {
        let r = run_throughput(SystemKind::VdbmsQosApi, &short_cfg());
        assert!(r.rejected > 0, "expected rejects under 1 q/s of full-quality demand");
        assert_eq!(r.admitted + r.rejected, r.queries);
    }

    #[test]
    fn quasaq_outserves_qos_api() {
        let cfg = short_cfg();
        let quasaq = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let qosapi = run_throughput(SystemKind::VdbmsQosApi, &cfg);
        let h = SimTime::from_secs(300);
        assert!(
            quasaq.stable_outstanding(h) > qosapi.stable_outstanding(h),
            "QuaSAQ {} vs QoS-API {}",
            quasaq.stable_outstanding(h),
            qosapi.stable_outstanding(h)
        );
    }

    #[test]
    fn lrb_beats_random() {
        let cfg = short_cfg();
        let lrb = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let random = run_throughput(SystemKind::Quasaq(CostKind::Random), &cfg);
        let h = SimTime::from_secs(300);
        assert!(
            lrb.stable_outstanding(h) > random.stable_outstanding(h),
            "LRB {} vs Random {}",
            lrb.stable_outstanding(h),
            random.stable_outstanding(h)
        );
        assert!(lrb.rejected <= random.rejected);
    }

    #[test]
    fn vdbms_has_most_outstanding_sessions() {
        // Fig 6a's signature: the system with no admission control piles
        // up the most concurrent sessions.
        let cfg = short_cfg();
        let plain = run_throughput(SystemKind::Vdbms, &cfg);
        let quasaq = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let h = SimTime::from_secs(300);
        assert!(plain.stable_outstanding(h) > quasaq.stable_outstanding(h));
    }

    #[test]
    fn stable_outstanding_truncates_odd_micros_horizon() {
        // Window start must be horizon/2 in integer microseconds (3 us for a
        // 7 us horizon), not a float reconstruction.
        let mut outstanding = Series::new();
        outstanding.push(SimTime::from_micros(2), 100.0); // before the window
        outstanding.push(SimTime::from_micros(3), 4.0); // exactly at the half
        outstanding.push(SimTime::from_micros(6), 8.0);
        let r = ThroughputResult {
            label: "synthetic".to_string(),
            outstanding,
            completions_per_min: RateCounter::new(SimDuration::from_secs(60)),
            rejects: Series::new(),
            queries: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            access: AccessStats::new(),
            mean_utility: None,
            queue: None,
            faults: None,
            degradation: None,
        };
        let horizon = SimTime::from_micros(7);
        assert_eq!(horizon.halved(), SimTime::from_micros(3));
        assert!((r.stable_outstanding(horizon) - 6.0).abs() < 1e-12);
    }

    /// The tentpole determinism guarantee: stepping domains on a worker
    /// pool must reproduce the serial run bit for bit — same series, same
    /// counts, same floats — across all three systems, including a
    /// fault-injected run whose crash handling reads mid-step state.
    #[test]
    fn domain_parallel_run_is_bit_identical_to_serial() {
        let serial =
            ThroughputConfig { admission: Some(AdmissionConfig::default()), ..short_cfg() };
        let sharded = ThroughputConfig { domain_workers: 4, ..serial.clone() };
        for system in
            [SystemKind::Vdbms, SystemKind::VdbmsQosApi, SystemKind::Quasaq(CostKind::Lrb)]
        {
            assert_eq!(
                run_throughput(system, &serial),
                run_throughput(system, &sharded),
                "{}",
                system.label()
            );
        }
        let faulty = ThroughputConfig { seed: 11, ..ThroughputConfig::availability() };
        let faulty_sharded = ThroughputConfig { domain_workers: 3, ..faulty.clone() };
        assert_eq!(
            run_throughput(SystemKind::Quasaq(CostKind::Lrb), &faulty),
            run_throughput(SystemKind::Quasaq(CostKind::Lrb), &faulty_sharded),
            "fault-injected run"
        );
    }

    #[test]
    fn accounting_balances() {
        let r = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &short_cfg());
        assert_eq!(r.admitted + r.rejected, r.queries);
        assert!(r.completed <= r.admitted);
        assert_eq!(r.completions_per_min.total(), r.completed);
    }

    #[test]
    fn queued_accounting_balances() {
        let cfg = ThroughputConfig { admission: Some(AdmissionConfig::default()), ..short_cfg() };
        for system in
            [SystemKind::Vdbms, SystemKind::VdbmsQosApi, SystemKind::Quasaq(CostKind::Lrb)]
        {
            let r = run_throughput(system, &cfg);
            // Every query reaches exactly one terminal outcome.
            assert_eq!(r.admitted + r.rejected, r.queries, "{}", r.label);
            assert!(r.completed <= r.admitted);
            let q = r.queue.as_ref().expect("front end enabled");
            // The rejected count decomposes exactly into the queue's drop
            // reasons; mid-stream abandonments were admitted, not rejected.
            assert_eq!(
                r.rejected,
                q.overflow + q.hopeless + q.abandoned_waiting + q.pending_at_horizon,
                "{}",
                r.label
            );
            assert_eq!(q.wait.count(), r.admitted, "{}", r.label);
            assert!(r.completed + q.abandoned_streaming <= r.admitted);
        }
    }

    #[test]
    fn queue_admits_more_than_fire_and_forget() {
        // Waiting out transient overload (and degrading while waiting)
        // must serve strictly more queries than rejecting on first touch.
        let base = short_cfg();
        let queued =
            ThroughputConfig { admission: Some(AdmissionConfig::default()), ..base.clone() };
        let fire_and_forget = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &base);
        let with_queue = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &queued);
        assert!(
            with_queue.admitted > fire_and_forget.admitted,
            "queued {} vs direct {}",
            with_queue.admitted,
            fire_and_forget.admitted
        );
        let q = with_queue.queue.as_ref().unwrap();
        assert!(q.retries > 0, "overloaded run must exercise retries");
        assert!(q.wait.mean() > 0.0, "some admissions waited");
        // The quantile sketch rides along: with waits recorded, p95 is
        // reportable and at least the mean's order of magnitude.
        let p95 = with_queue.queue_wait_p95().expect("waits recorded");
        assert!(p95 > 0.0, "p95 of a waiting run must be positive");
        assert!(p95 >= q.wait.mean() * 0.5, "p95 {} vs mean {}", p95, q.wait.mean());
    }

    /// The acceptance scenario: server 0 crashes at t = 1000 s and
    /// restarts at t = 2000 s. Sessions on it fail over (possibly at a
    /// renegotiated QoP) or re-enter the admission queue, and the whole
    /// run replays deterministically.
    #[test]
    fn crash_restart_fails_over_deterministically() {
        let cfg = ThroughputConfig { seed: 11, ..ThroughputConfig::availability() };
        for system in
            [SystemKind::Vdbms, SystemKind::VdbmsQosApi, SystemKind::Quasaq(CostKind::Lrb)]
        {
            let r = run_throughput(system, &cfg);
            let f = r.faults.as_ref().expect("fault injection enabled");
            assert!(f.interrupted > 0, "{}: the crash must cut live sessions", r.label);
            // Every interrupted session reaches exactly one fate.
            assert_eq!(
                f.interrupted,
                f.failed_over + f.recovered + f.dropped,
                "{}: {f:?}",
                r.label
            );
            if system == SystemKind::Vdbms {
                // No admission control: every displaced session lands on a
                // surviving replica at once.
                assert_eq!(f.failed_over, f.interrupted, "{}: {f:?}", r.label);
            } else {
                // Admission-controlled systems requeue or shed what the
                // saturated survivors cannot carry.
                assert!(
                    f.failed_over + f.requeued + f.dropped > 0,
                    "{}: displaced sessions must be dispatched somewhere: {f:?}",
                    r.label
                );
            }
            assert_eq!(f.recovery.count(), f.failed_over + f.recovered, "{}", r.label);
            // Displaced sessions never double-count in the admission
            // accounting.
            assert_eq!(r.admitted + r.rejected, r.queries, "{}", r.label);
            // Deterministic replay, bit for bit.
            assert_eq!(r, run_throughput(system, &cfg), "{}", r.label);
        }
    }

    #[test]
    fn failover_renegotiates_down_the_ladder_under_pressure() {
        // Without the queue, displaced sessions either fail over at once
        // or are dropped; with two of three servers gone, the lone
        // survivor is tight enough that QuaSAQ renegotiates.
        let crash = SimTime::from_secs(150);
        let restart = SimTime::from_secs(280);
        let mut plan = FaultPlan::crash_restart(ServerId(0), crash, restart);
        plan.faults.extend(FaultPlan::crash_restart(ServerId(1), crash, restart).faults);
        let cfg = ThroughputConfig {
            horizon: SimTime::from_secs(300),
            faults: Some(plan),
            ..ThroughputConfig::fig6()
        };
        let r = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let f = r.faults.as_ref().expect("fault injection enabled");
        assert!(f.interrupted > 0);
        assert_eq!(f.interrupted, f.failed_over + f.recovered + f.dropped);
        assert_eq!(f.recovered, 0, "no queue: nothing re-enters");
        assert_eq!(f.requeued, 0, "no queue: nothing re-enters");
        assert!(
            f.failover_degraded > 0 || f.dropped > 0,
            "two dead servers must force renegotiation or losses: {f:?}"
        );
    }

    #[test]
    fn degraded_links_accumulate_violation_seconds() {
        // Halve server 0's link for 100 s mid-run: sessions keep flowing
        // (nothing is interrupted) but their exposure is accounted.
        let plan = FaultPlan {
            faults: vec![quasaq_sim::FaultSpec {
                server: ServerId(0),
                at: SimTime::from_secs(100),
                duration: SimDuration::from_secs(100),
                kind: FaultKind::LinkDegradation { factor: 0.5 },
            }],
        };
        let cfg = ThroughputConfig {
            horizon: SimTime::from_secs(300),
            faults: Some(plan),
            ..ThroughputConfig::fig6()
        };
        let r = run_throughput(SystemKind::Vdbms, &cfg);
        let f = r.faults.as_ref().expect("fault injection enabled");
        assert_eq!(f.interrupted, 0, "degradation is not a crash");
        assert!(
            f.qos_violation_secs > 0.0,
            "plain VDBMS keeps streaming through the degraded window"
        );
        // The exposure is bounded by window length x sessions ever live.
        assert!(f.qos_violation_secs <= 100.0 * r.admitted as f64);
    }

    #[test]
    fn fault_free_runs_carry_no_fault_metrics_and_match_legacy() {
        // `faults: None` must be bit-identical to a run with the field
        // absent entirely — which is what every pre-fault test asserts —
        // and an explicit empty plan reports all-zero metrics.
        let none = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &short_cfg());
        assert!(none.faults.is_none());
        let empty = ThroughputConfig { faults: Some(FaultPlan::none()), ..short_cfg() };
        let r = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &empty);
        let f = r.faults.as_ref().expect("explicit empty plan still reports");
        assert_eq!(*f, FaultMetrics::default());
        // Identical everywhere else.
        assert_eq!(none.outstanding, r.outstanding);
        assert_eq!(none.admitted, r.admitted);
        assert_eq!(none.rejected, r.rejected);
        assert_eq!(none.completed, r.completed);
    }

    /// The honesty fix for EXPERIMENTS.md Fig 6: with a patience window,
    /// plain VDBMS's outstanding sessions stop growing monotonically and
    /// plateau near arrival_rate * (nominal + patience), because clients
    /// cancel sessions the oversubscribed links stretched too far.
    #[test]
    fn plain_vdbms_plateaus_with_patience() {
        // Short clips so the run reaches steady state inside the horizon.
        let mut testbed = TestbedConfig::default();
        testbed.library.min_duration = SimDuration::from_secs(30);
        testbed.library.max_duration = SimDuration::from_secs(120);
        let horizon = SimTime::from_secs(600);
        let base = ThroughputConfig {
            testbed,
            horizon,
            sample_step: SimDuration::from_secs(10),
            seed: 11,
            video_skew: 0.0,
            qop_mix: QopMix::Uniform,
            local_plans_only: false,
            admission: None,
            faults: None,
            arrival_period: None,
            arrival_burst: 1,
            plan_cache: false,
            domain_workers: 0,
            links: None,
            adaptation: None,
        };
        let queued = ThroughputConfig {
            admission: Some(AdmissionConfig {
                patience: SimDuration::from_secs(60),
                ..AdmissionConfig::default()
            }),
            ..base.clone()
        };
        let without = run_throughput(SystemKind::Vdbms, &base);
        let with = run_throughput(SystemKind::Vdbms, &queued);
        let window = |r: &ThroughputResult, from, to| {
            r.outstanding
                .window_mean(SimTime::from_secs(from), SimTime::from_secs(to))
                .expect("sampled window")
        };
        // Without patience the pile-up keeps growing through the horizon...
        let w1 = window(&without, 300, 450);
        let w2 = window(&without, 450, 601);
        assert!(w2 > w1 * 1.10, "expected monotonic growth, got {w1} -> {w2}");
        // ...with patience it levels off once the oldest stretched
        // sessions start getting cancelled.
        let p1 = window(&with, 300, 450);
        let p2 = window(&with, 450, 601);
        assert!((p2 - p1).abs() < p1 * 0.10, "expected a plateau, got {p1} -> {p2}");
        assert!(p2 < w2, "patience must cap the pile-up ({p2} vs {w2})");
        let q = with.queue.as_ref().expect("front end enabled");
        assert!(q.abandoned_streaming > 0, "stretched sessions must be abandoned");
    }

    /// The flash-crowd case the bulk-admit path exists for: bursty
    /// arrivals over a skewed catalog, cache on vs off. The cached run
    /// must be bit-identical — same admissions, same series, same floats —
    /// while the batch prefetch amortizes enumeration across the burst.
    #[test]
    fn flash_crowd_with_plan_cache_is_bit_identical() {
        let base = ThroughputConfig {
            video_skew: 1.1,
            arrival_burst: 8,
            admission: Some(AdmissionConfig::default()),
            ..short_cfg()
        };
        let cached = ThroughputConfig { plan_cache: true, ..base.clone() };
        for kind in [CostKind::Lrb, CostKind::Random] {
            let cold = run_throughput(SystemKind::Quasaq(kind), &base);
            let warm = run_throughput(SystemKind::Quasaq(kind), &cached);
            assert_eq!(cold, warm, "cache changed a {kind:?} decision");
            assert_eq!(cold.admitted + cold.rejected, cold.queries);
        }
        // Bursts actually multiply load: ~8x the queries of the lone stream.
        let lone = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &short_cfg());
        let burst = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &base);
        assert!(burst.queries > lone.queries * 6, "{} vs {}", burst.queries, lone.queries);
    }

    use quasaq_sim::LinkSpec;

    /// A window where one server's link collapses and later recovers.
    fn crush_server(server: ServerId, factor: f64) -> LinkPlan {
        LinkPlan {
            changes: vec![
                LinkSpec { server, at: SimTime::from_secs(60), factor },
                LinkSpec { server, at: SimTime::from_secs(180), factor: 1.0 },
            ],
        }
    }

    /// An empty link plan plus an idle adaptation loop must be inert:
    /// identical decisions, identical series, zeroed metrics. This pins
    /// the baseline before the degradation tests trust the machinery.
    #[test]
    fn idle_link_plan_and_adaptation_are_inert() {
        let legacy = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &short_cfg());
        let cfg = ThroughputConfig {
            links: Some(LinkPlan::none()),
            adaptation: Some(AdaptationConfig::default()),
            ..short_cfg()
        };
        let mut idle = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        assert_eq!(idle.faults.take(), Some(FaultMetrics::default()));
        assert_eq!(idle.degradation.take(), Some(DegradationMetrics::default()));
        assert_eq!(idle, legacy);
    }

    /// Link set-points actually move capacity: a crushed server stretches
    /// its fair-share sessions into QoS violation, and the recovery
    /// set-point ends the exposure. Replay and sharded runs agree bit for
    /// bit on the stochastic timeline.
    #[test]
    fn link_set_points_degrade_and_recover_capacity() {
        let cfg = ThroughputConfig { links: Some(crush_server(ServerId(0), 0.3)), ..short_cfg() };
        let r = run_throughput(SystemKind::Vdbms, &cfg);
        let f = r.faults.as_ref().expect("link dynamics enable violation tracking");
        assert_eq!(f.interrupted, 0, "set-points are not crashes");
        assert!(f.qos_violation_secs > 0.0, "a 70% collapse must stretch sessions");
        assert_eq!(r, run_throughput(SystemKind::Vdbms, &cfg), "replay");
        let sharded = ThroughputConfig { domain_workers: 4, ..cfg.clone() };
        assert_eq!(r, run_throughput(SystemKind::Vdbms, &sharded), "sharded");
    }

    /// The tentpole end-to-end claim: under a congesting link window the
    /// adaptation loop renegotiates sessions down the ladder, sheds load
    /// off the hot server, and ends the run with strictly less violation
    /// exposure than the frozen system — without oscillating.
    #[test]
    fn adaptation_sheds_load_and_reduces_violation_exposure() {
        let frozen_cfg =
            ThroughputConfig { links: Some(crush_server(ServerId(0), 0.3)), ..short_cfg() };
        let adaptive_cfg = ThroughputConfig {
            adaptation: Some(AdaptationConfig::default()),
            ..frozen_cfg.clone()
        };
        let frozen = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &frozen_cfg);
        let adapted = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &adaptive_cfg);
        let dm = adapted.degradation.as_ref().expect("adaptation enabled");
        assert!(dm.congestion_events > 0, "the crush must trip the watermark: {dm:?}");
        assert!(dm.downshifts > 0, "sustained congestion must renegotiate: {dm:?}");
        assert!(dm.congested_secs > 0.0, "{dm:?}");
        assert!(dm.violation_secs_avoided > 0.0, "{dm:?}");
        // One crush window, 30 s upgrade period: recovery must not hunt.
        assert_eq!(dm.oscillations, 0, "{dm:?}");
        assert!(dm.upshifts <= dm.downshifts, "{dm:?}");
        let fv = frozen.faults.as_ref().unwrap().qos_violation_secs;
        let av = adapted.faults.as_ref().unwrap().qos_violation_secs;
        assert!(av < fv, "adaptation must shrink exposure: {av} vs frozen {fv}");
        assert_eq!(adapted.admitted + adapted.rejected, adapted.queries);
    }

    /// Brownout at the front door: once enough servers congest, Economy
    /// arrivals are turned away outright and Standard/Premium arrivals
    /// are degraded one step before admission. The plain VDBMS overloads
    /// naturally, so its congestion is organic rather than injected.
    #[test]
    fn brownout_sheds_arrivals_by_service_class() {
        let cfg = ThroughputConfig {
            links: Some(LinkPlan::none()),
            adaptation: Some(AdaptationConfig::default()),
            ..short_cfg()
        };
        let r = run_throughput(SystemKind::Vdbms, &cfg);
        let dm = r.degradation.as_ref().expect("adaptation enabled");
        assert!(dm.congestion_events > 0, "1 q/s of full-rate demand must congest: {dm:?}");
        assert!(dm.brownout_rejected > 0, "Economy arrivals must be shed: {dm:?}");
        assert!(dm.brownout_degraded > 0, "Standard/Premium must degrade: {dm:?}");
        assert!(r.rejected >= dm.brownout_rejected);
        assert_eq!(r.admitted + r.rejected, r.queries);
        // The plain system admits everything brownout lets through.
        assert_eq!(r.rejected, dm.brownout_rejected);
    }

    /// The full stochastic stack — sampled Markov link process, adaptation,
    /// brownout, admission queue — replays bit-identically and shards
    /// bit-identically, which is what makes every degradation number in
    /// the bench suite trustworthy.
    #[test]
    fn stochastic_runs_are_bit_identical_serial_vs_sharded() {
        let sampled = LinkPlan::sample(
            17,
            ServerId::first_n(3),
            SimTime::from_secs(300),
            quasaq_sim::LinkModel::Markov {
                factors: [1.0, 0.45, 0.2],
                dwell: [
                    SimDuration::from_secs(60),
                    SimDuration::from_secs(40),
                    SimDuration::from_secs(20),
                ],
            },
        );
        assert!(!sampled.is_empty(), "a 300 s horizon must sample transitions");
        let serial = ThroughputConfig {
            links: Some(sampled),
            adaptation: Some(AdaptationConfig::default()),
            admission: Some(AdmissionConfig::default()),
            ..short_cfg()
        };
        let sharded = ThroughputConfig { domain_workers: 4, ..serial.clone() };
        for system in [SystemKind::Vdbms, SystemKind::Quasaq(CostKind::Lrb)] {
            let a = run_throughput(system, &serial);
            assert_eq!(a, run_throughput(system, &serial), "{} replay", system.label());
            assert_eq!(a, run_throughput(system, &sharded), "{} sharded", system.label());
        }
    }
}
