//! The throughput experiment driver (Fig 6 and Fig 7).
//!
//! Feeds the same Poisson query stream into one of the three systems —
//! plain VDBMS, VDBMS + QoS API, or VDBMS + QuaSAQ (with a selectable
//! cost model) — over the fluid session engine, and records what the
//! paper plots: outstanding sessions over time (Figs 6a, 7a),
//! accomplished jobs per minute (Fig 6b), and cumulative rejects
//! (Fig 7b).

use crate::admission::{AdmissionConfig, AdmissionQueue, QueueMetrics, Waiting};
use crate::testbed::{CostKind, Testbed, TestbedConfig};
use crate::traffic::{generate_queries, TrafficConfig};
use quasaq_core::{
    PlanExecutor, PlanRequest, QopSecurity, QosWeights, QualityManager, Rejection, UtilityGain,
};
use quasaq_qosapi::{CompositeQosApi, ReservationId, ResourceKey, ResourceKind, ResourceVector};
use quasaq_sim::link::SharePolicy;
use quasaq_sim::{LevelTracker, RateCounter, Rng, Series, SimDuration, SimTime};
use quasaq_store::AccessStats;
use quasaq_stream::{FluidEngine, FluidSessionId};
use quasaq_vdbms::{BaselineKind, BaselinePlanner, QueuedQuery};
use std::collections::{BTreeSet, HashMap};

/// Which system services the query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Plain VDBMS: admit everything, stream the original best-effort.
    Vdbms,
    /// VDBMS with the QoS API: reserve the full-quality stream, reject on
    /// saturation.
    VdbmsQosApi,
    /// Full QuaSAQ with the given cost model.
    Quasaq(CostKind),
}

impl SystemKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            SystemKind::Vdbms => "VDBMS".to_string(),
            SystemKind::VdbmsQosApi => "VDBMS+QoS API".to_string(),
            SystemKind::Quasaq(c) => format!("VDBMS+QuaSAQ({})", c.label()),
        }
    }
}

/// Run parameters.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Deployment.
    pub testbed: TestbedConfig,
    /// Run length (Fig 6: 1000 s; Fig 7: 7000 s).
    pub horizon: SimTime,
    /// Sampling step for the outstanding-sessions series.
    pub sample_step: SimDuration,
    /// Master seed (traffic and tie-breaking).
    pub seed: u64,
    /// Zipf skew over videos (0 = the paper's uniform access).
    pub video_skew: f64,
    /// Restrict QuaSAQ plans to the replica's own site (placement
    /// studies; the paper's default allows cross-site delivery).
    pub local_plans_only: bool,
    /// Queued admission front end: rejected queries wait, back off,
    /// degrade, and eventually give up, and admitted best-effort sessions
    /// are abandoned once they overrun their nominal duration by more
    /// than the patience window. `None` keeps the legacy fire-and-forget
    /// client (bit-identical to runs before the queue existed).
    pub admission: Option<AdmissionConfig>,
}

impl ThroughputConfig {
    /// The Fig 6 configuration (1000 s horizon).
    pub fn fig6() -> Self {
        ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(1000),
            sample_step: SimDuration::from_secs(10),
            seed: 7,
            video_skew: 0.0,
            local_plans_only: false,
            admission: None,
        }
    }

    /// The Fig 7 configuration (7000 s horizon).
    pub fn fig7() -> Self {
        ThroughputConfig { horizon: SimTime::from_secs(7000), ..Self::fig6() }
    }

    /// The Fig 6 configuration behind the queued admission front end with
    /// default backoff and patience.
    pub fn queued() -> Self {
        ThroughputConfig { admission: Some(AdmissionConfig::default()), ..Self::fig6() }
    }
}

/// Everything the paper plots for one run. `PartialEq` compares every
/// field (floats bit-for-bit via their numeric equality), which is what
/// the parallel-runner determinism checks rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputResult {
    /// System label.
    pub label: String,
    /// Outstanding sessions sampled over time (Figs 6a, 7a).
    pub outstanding: Series,
    /// Completed jobs per minute (Fig 6b).
    pub completions_per_min: RateCounter,
    /// Cumulative rejects over time (Fig 7b).
    pub rejects: Series,
    /// Total queries issued.
    pub queries: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Queries rejected.
    pub rejected: u64,
    /// Sessions completed within the horizon.
    pub completed: u64,
    /// Which video was served from which server, per admitted session
    /// (drives the online-migration extension).
    pub access: AccessStats,
    /// Mean perceptual utility of admitted plans (QuaSAQ systems only).
    pub mean_utility: Option<f64>,
    /// Queue metrics when the admission front end was enabled.
    pub queue: Option<QueueMetrics>,
}

impl ThroughputResult {
    /// Mean outstanding sessions over the stable stage (second half of the
    /// run).
    pub fn stable_outstanding(&self, horizon: SimTime) -> f64 {
        self.outstanding
            .window_mean(horizon.halved(), horizon + SimDuration::from_secs(1))
            .unwrap_or(0.0)
    }
}

enum SystemState {
    Plain { planner: BaselinePlanner },
    QosApi { planner: BaselinePlanner, api: CompositeQosApi, headroom: f64 },
    Quasaq { manager: QualityManager, executor: PlanExecutor },
}

/// Runs one system against the shared query stream on the (process-wide,
/// immutably shared) testbed for `cfg.testbed`. Runs never mutate the
/// testbed, so N system-variants over one deployment pay for catalog
/// generation once; callers that *do* mutate the replica layout build
/// their own testbed and use [`run_throughput_on`].
pub fn run_throughput(system: SystemKind, cfg: &ThroughputConfig) -> ThroughputResult {
    let testbed = Testbed::shared(cfg.testbed.clone());
    run_throughput_on(&testbed, system, cfg)
}

/// Runs one system against the query stream on an existing testbed (so
/// callers can mutate the replica layout between runs, e.g. for the
/// online-migration extension).
pub fn run_throughput_on(
    testbed: &Testbed,
    system: SystemKind,
    cfg: &ThroughputConfig,
) -> ThroughputResult {
    let mut traffic = TrafficConfig::paper(testbed.library.len(), cfg.horizon);
    traffic.video_skew = cfg.video_skew;
    let queries = generate_queries(cfg.seed ^ 0x51ab_17e5, &traffic);
    let mut rng = Rng::new(cfg.seed ^ 0x9e37_79b9);

    let mut state = match system {
        SystemKind::Vdbms => {
            SystemState::Plain { planner: BaselinePlanner::new(BaselineKind::Plain) }
        }
        SystemKind::VdbmsQosApi => SystemState::QosApi {
            planner: BaselinePlanner::new(BaselineKind::WithQosApi),
            api: testbed.qos_api(),
            headroom: cfg.testbed.cost.reservation_headroom,
        },
        SystemKind::Quasaq(kind) => SystemState::Quasaq {
            manager: testbed.quality_manager_with(
                kind,
                quasaq_core::GeneratorConfig {
                    cost: cfg.testbed.cost,
                    allow_remote: !cfg.local_plans_only,
                    ..quasaq_core::GeneratorConfig::default()
                },
            ),
            executor: PlanExecutor { cost: cfg.testbed.cost, ..PlanExecutor::default() },
        },
    };

    // All systems pace sessions at their stream rate on fair-share links;
    // reservation-based systems enforce admission in the QoS API, so the
    // link never oversubscribes for them.
    let mut fluid =
        FluidEngine::new(testbed.servers(), SharePolicy::FairShare, cfg.testbed.link_capacity_bps);

    let mut queue = cfg.admission.clone().map(AdmissionQueue::new);
    let patience = cfg.admission.as_ref().map(|a| a.patience);
    // Mid-stream give-up deadlines, ordered for the event loop plus a
    // reverse index for completion-time removal. Both stay empty when the
    // front end is disabled, so the legacy event sequence is untouched.
    let mut deadlines: BTreeSet<(SimTime, FluidSessionId)> = BTreeSet::new();
    let mut deadline_of: HashMap<FluidSessionId, SimTime> = HashMap::new();

    let mut reservations: HashMap<FluidSessionId, ReservationId> = HashMap::new();
    let mut outstanding = LevelTracker::new();
    let mut completions = RateCounter::new(SimDuration::from_secs(60));
    let mut rejects = Series::new();
    let mut rejected = 0u64;
    let mut admitted = 0u64;
    let mut completed = 0u64;
    let mut access = AccessStats::new();
    let mut utility_sum = 0.0f64;
    let mut utility_n = 0u64;

    let mut qi = 0usize;
    loop {
        let tq = queries.get(qi).map(|q| q.at);
        let tf = fluid.next_event().filter(|&t| t <= cfg.horizon);
        let tr = queue.as_ref().and_then(|q| q.next_ready()).filter(|&t| t <= cfg.horizon);
        let ta = deadlines.iter().next().map(|&(t, _)| t).filter(|&t| t <= cfg.horizon);
        let Some(t) = [tq, tf, tr, ta].into_iter().flatten().min() else { break };
        if t > cfg.horizon {
            break;
        }
        fluid.advance_to(t);
        handle_done(
            fluid.drain_completions(),
            &mut reservations,
            &mut state,
            &mut outstanding,
            &mut completions,
            &mut completed,
            &mut deadlines,
            &mut deadline_of,
        );
        // Mid-stream patience: cancel sessions that overran their nominal
        // duration by more than the patience window. Completions at the
        // same instant were drained first, so finishing exactly on the
        // deadline counts as done.
        while let Some(&(dt, sid)) = deadlines.iter().next() {
            if dt > t {
                break;
            }
            deadlines.remove(&(dt, sid));
            deadline_of.remove(&sid);
            fluid.cancel_session(t, sid);
            outstanding.adjust(t, -1);
            if let Some(res) = reservations.remove(&sid) {
                release(&mut state, res);
            }
            queue
                .as_mut()
                .expect("deadlines only exist with admission enabled")
                .record_stream_abandoned(t);
        }
        // Retries due now run before the new arrival: they have waited
        // longer.
        if let Some(qu) = queue.as_mut() {
            while let Some(w) = qu.pop_due(t) {
                match admit(&mut state, testbed, &w.query, &mut fluid, &mut rng, t) {
                    Ok(sess) => {
                        admitted += 1;
                        outstanding.adjust(t, 1);
                        access.record(w.query.video, sess.server);
                        if let Some(u) = sess.utility {
                            utility_sum += u;
                            utility_n += 1;
                        }
                        if let Some(res) = sess.reservation {
                            reservations.insert(sess.sid, res);
                        }
                        qu.record_admitted(t, w.arrival);
                        if let Some(p) = patience {
                            let dl = t + sess.nominal + p;
                            deadlines.insert((dl, sess.sid));
                            deadline_of.insert(sess.sid, dl);
                        }
                    }
                    Err(why) => {
                        if qu.admit_failure(t, w, &why).is_rejection() {
                            rejected += 1;
                            rejects.push(t, rejected as f64);
                        }
                    }
                }
            }
        }
        if tq == Some(t) {
            let q = &queries[qi];
            qi += 1;
            let request = QueuedQuery { video: q.video, qos: q.qos.clone() };
            match admit(&mut state, testbed, &request, &mut fluid, &mut rng, t) {
                Ok(sess) => {
                    admitted += 1;
                    outstanding.adjust(t, 1);
                    access.record(q.video, sess.server);
                    if let Some(u) = sess.utility {
                        utility_sum += u;
                        utility_n += 1;
                    }
                    if let Some(res) = sess.reservation {
                        reservations.insert(sess.sid, res);
                    }
                    if let Some(qu) = queue.as_mut() {
                        qu.record_admitted(t, t);
                    }
                    if let Some(p) = patience {
                        let dl = t + sess.nominal + p;
                        deadlines.insert((dl, sess.sid));
                        deadline_of.insert(sess.sid, dl);
                    }
                }
                Err(why) => match queue.as_mut() {
                    Some(qu) => {
                        let w = Waiting { query: request, arrival: t, attempts: 1 };
                        if qu.admit_failure(t, w, &why).is_rejection() {
                            rejected += 1;
                            rejects.push(t, rejected as f64);
                        }
                    }
                    None => {
                        rejected += 1;
                        rejects.push(t, rejected as f64);
                    }
                },
            }
        }
    }
    fluid.advance_to(cfg.horizon);
    handle_done(
        fluid.drain_completions(),
        &mut reservations,
        &mut state,
        &mut outstanding,
        &mut completions,
        &mut completed,
        &mut deadlines,
        &mut deadline_of,
    );
    // Whoever is still waiting never got served: fold them into the
    // rejected count so `admitted + rejected == queries` holds.
    if let Some(qu) = queue.as_mut() {
        let pending = qu.finish();
        if pending > 0 {
            rejected += pending;
            rejects.push(cfg.horizon, rejected as f64);
        }
    }

    ThroughputResult {
        label: system.label(),
        outstanding: outstanding.sample(cfg.sample_step, cfg.horizon),
        completions_per_min: completions,
        rejects,
        queries: queries.len() as u64,
        admitted,
        rejected,
        completed,
        access,
        mean_utility: (utility_n > 0).then(|| utility_sum / utility_n as f64),
        queue: queue.map(AdmissionQueue::into_metrics),
    }
}

fn release(state: &mut SystemState, res: ReservationId) {
    match state {
        SystemState::QosApi { api, .. } => api.release(res),
        SystemState::Quasaq { manager, .. } => manager.release_reservation(res),
        SystemState::Plain { .. } => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_done(
    done: Vec<quasaq_stream::FluidDone>,
    reservations: &mut HashMap<FluidSessionId, ReservationId>,
    state: &mut SystemState,
    outstanding: &mut LevelTracker,
    completions: &mut RateCounter,
    completed: &mut u64,
    deadlines: &mut BTreeSet<(SimTime, FluidSessionId)>,
    deadline_of: &mut HashMap<FluidSessionId, SimTime>,
) {
    for d in done {
        outstanding.adjust(d.at, -1);
        completions.record(d.at);
        *completed += 1;
        if let Some(res) = reservations.remove(&d.id) {
            release(state, res);
        }
        if let Some(dl) = deadline_of.remove(&d.id) {
            deadlines.remove(&(dl, d.id));
        }
    }
}

/// One admitted session, whichever system admitted it.
struct AdmittedSession {
    sid: FluidSessionId,
    reservation: Option<ReservationId>,
    server: quasaq_sim::ServerId,
    utility: Option<f64>,
    /// Unstretched duration (bytes / rate): what playback takes when the
    /// link honours the stream's pacing rate.
    nominal: SimDuration,
}

fn admit(
    state: &mut SystemState,
    testbed: &Testbed,
    q: &QueuedQuery,
    fluid: &mut FluidEngine,
    rng: &mut Rng,
    now: SimTime,
) -> Result<AdmittedSession, Rejection> {
    match state {
        SystemState::Plain { planner } => {
            let choice =
                planner.select(&testbed.engine, q.video, rng).ok_or(Rejection::NoFeasiblePlan)?;
            let bytes = choice.record.object.bytes;
            let rate = choice.record.object.rate_bps;
            let sid = fluid
                .add_session(now, choice.server, bytes, rate)
                .map_err(|_| Rejection::AdmissionFailed)?;
            Ok(AdmittedSession {
                sid,
                reservation: None,
                server: choice.server,
                utility: None,
                nominal: nominal_duration(bytes, rate),
            })
        }
        SystemState::QosApi { planner, api, headroom } => {
            let choice =
                planner.select(&testbed.engine, q.video, rng).ok_or(Rejection::NoFeasiblePlan)?;
            // The baseline has no cost model, but admission may try each
            // server holding the (full-quality) replica in random order.
            let mut servers: Vec<quasaq_sim::ServerId> = testbed
                .engine
                .replicas(q.video)
                .iter()
                .filter(|r| r.object.rate_bps == choice.record.object.rate_bps)
                .map(|r| r.object.server)
                .collect();
            servers.dedup();
            rng.shuffle(&mut servers);
            let profile = choice.record.profile;
            for server in servers {
                let demand = ResourceVector::new()
                    .with(
                        ResourceKey::new(server, ResourceKind::Cpu),
                        (profile.cpu_share * *headroom).min(1.0),
                    )
                    .with(ResourceKey::new(server, ResourceKind::NetBandwidth), profile.net_bps)
                    .with(ResourceKey::new(server, ResourceKind::DiskBandwidth), profile.disk_bps)
                    .with(ResourceKey::new(server, ResourceKind::Memory), profile.memory_bytes);
                if let Ok(res) = api.reserve(&demand) {
                    let bytes = choice.record.object.bytes;
                    let rate = choice.record.object.rate_bps;
                    let sid =
                        fluid.add_session(now, server, bytes, rate).expect("fair-share admits");
                    return Ok(AdmittedSession {
                        sid,
                        reservation: Some(res),
                        server,
                        utility: None,
                        nominal: nominal_duration(bytes, rate),
                    });
                }
            }
            Err(Rejection::AdmissionFailed)
        }
        SystemState::Quasaq { manager, executor } => {
            let request =
                PlanRequest { video: q.video, qos: q.qos.clone(), security: QopSecurity::Open };
            let admitted = manager.process(&testbed.engine, &request, rng)?;
            let meta = testbed.engine.video(q.video).expect("known video");
            let (bytes, rate) = executor.fluid_params(&admitted.plan, meta);
            let server = admitted.plan.target_server;
            let utility = UtilityGain { weights: QosWeights::default() }.utility(&admitted.plan);
            let sid = fluid.add_session(now, server, bytes, rate).expect("fair-share admits");
            Ok(AdmittedSession {
                sid,
                reservation: Some(admitted.reservation),
                server,
                utility: Some(utility),
                nominal: nominal_duration(bytes, rate),
            })
        }
    }
}

fn nominal_duration(bytes: u64, rate_bps: u64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / rate_bps.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg() -> ThroughputConfig {
        ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(300),
            sample_step: SimDuration::from_secs(10),
            seed: 11,
            video_skew: 0.0,
            local_plans_only: false,
            admission: None,
        }
    }

    #[test]
    fn plain_vdbms_admits_everything() {
        let r = run_throughput(SystemKind::Vdbms, &short_cfg());
        assert_eq!(r.rejected, 0);
        assert_eq!(r.admitted, r.queries);
        assert!(r.stable_outstanding(SimTime::from_secs(300)) > 0.0);
    }

    #[test]
    fn qos_api_rejects_under_load() {
        let r = run_throughput(SystemKind::VdbmsQosApi, &short_cfg());
        assert!(r.rejected > 0, "expected rejects under 1 q/s of full-quality demand");
        assert_eq!(r.admitted + r.rejected, r.queries);
    }

    #[test]
    fn quasaq_outserves_qos_api() {
        let cfg = short_cfg();
        let quasaq = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let qosapi = run_throughput(SystemKind::VdbmsQosApi, &cfg);
        let h = SimTime::from_secs(300);
        assert!(
            quasaq.stable_outstanding(h) > qosapi.stable_outstanding(h),
            "QuaSAQ {} vs QoS-API {}",
            quasaq.stable_outstanding(h),
            qosapi.stable_outstanding(h)
        );
    }

    #[test]
    fn lrb_beats_random() {
        let cfg = short_cfg();
        let lrb = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let random = run_throughput(SystemKind::Quasaq(CostKind::Random), &cfg);
        let h = SimTime::from_secs(300);
        assert!(
            lrb.stable_outstanding(h) > random.stable_outstanding(h),
            "LRB {} vs Random {}",
            lrb.stable_outstanding(h),
            random.stable_outstanding(h)
        );
        assert!(lrb.rejected <= random.rejected);
    }

    #[test]
    fn vdbms_has_most_outstanding_sessions() {
        // Fig 6a's signature: the system with no admission control piles
        // up the most concurrent sessions.
        let cfg = short_cfg();
        let plain = run_throughput(SystemKind::Vdbms, &cfg);
        let quasaq = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        let h = SimTime::from_secs(300);
        assert!(plain.stable_outstanding(h) > quasaq.stable_outstanding(h));
    }

    #[test]
    fn stable_outstanding_truncates_odd_micros_horizon() {
        // Window start must be horizon/2 in integer microseconds (3 us for a
        // 7 us horizon), not a float reconstruction.
        let mut outstanding = Series::new();
        outstanding.push(SimTime::from_micros(2), 100.0); // before the window
        outstanding.push(SimTime::from_micros(3), 4.0); // exactly at the half
        outstanding.push(SimTime::from_micros(6), 8.0);
        let r = ThroughputResult {
            label: "synthetic".to_string(),
            outstanding,
            completions_per_min: RateCounter::new(SimDuration::from_secs(60)),
            rejects: Series::new(),
            queries: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            access: AccessStats::new(),
            mean_utility: None,
            queue: None,
        };
        let horizon = SimTime::from_micros(7);
        assert_eq!(horizon.halved(), SimTime::from_micros(3));
        assert!((r.stable_outstanding(horizon) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn accounting_balances() {
        let r = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &short_cfg());
        assert_eq!(r.admitted + r.rejected, r.queries);
        assert!(r.completed <= r.admitted);
        assert_eq!(r.completions_per_min.total(), r.completed);
    }

    #[test]
    fn queued_accounting_balances() {
        let cfg = ThroughputConfig { admission: Some(AdmissionConfig::default()), ..short_cfg() };
        for system in
            [SystemKind::Vdbms, SystemKind::VdbmsQosApi, SystemKind::Quasaq(CostKind::Lrb)]
        {
            let r = run_throughput(system, &cfg);
            // Every query reaches exactly one terminal outcome.
            assert_eq!(r.admitted + r.rejected, r.queries, "{}", r.label);
            assert!(r.completed <= r.admitted);
            let q = r.queue.as_ref().expect("front end enabled");
            // The rejected count decomposes exactly into the queue's drop
            // reasons; mid-stream abandonments were admitted, not rejected.
            assert_eq!(
                r.rejected,
                q.overflow + q.hopeless + q.abandoned_waiting + q.pending_at_horizon,
                "{}",
                r.label
            );
            assert_eq!(q.wait.count(), r.admitted, "{}", r.label);
            assert!(r.completed + q.abandoned_streaming <= r.admitted);
        }
    }

    #[test]
    fn queue_admits_more_than_fire_and_forget() {
        // Waiting out transient overload (and degrading while waiting)
        // must serve strictly more queries than rejecting on first touch.
        let base = short_cfg();
        let queued =
            ThroughputConfig { admission: Some(AdmissionConfig::default()), ..base.clone() };
        let fire_and_forget = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &base);
        let with_queue = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &queued);
        assert!(
            with_queue.admitted > fire_and_forget.admitted,
            "queued {} vs direct {}",
            with_queue.admitted,
            fire_and_forget.admitted
        );
        let q = with_queue.queue.as_ref().unwrap();
        assert!(q.retries > 0, "overloaded run must exercise retries");
        assert!(q.wait.mean() > 0.0, "some admissions waited");
    }

    /// The honesty fix for EXPERIMENTS.md Fig 6: with a patience window,
    /// plain VDBMS's outstanding sessions stop growing monotonically and
    /// plateau near arrival_rate * (nominal + patience), because clients
    /// cancel sessions the oversubscribed links stretched too far.
    #[test]
    fn plain_vdbms_plateaus_with_patience() {
        // Short clips so the run reaches steady state inside the horizon.
        let mut testbed = TestbedConfig::default();
        testbed.library.min_duration = SimDuration::from_secs(30);
        testbed.library.max_duration = SimDuration::from_secs(120);
        let horizon = SimTime::from_secs(600);
        let base = ThroughputConfig {
            testbed,
            horizon,
            sample_step: SimDuration::from_secs(10),
            seed: 11,
            video_skew: 0.0,
            local_plans_only: false,
            admission: None,
        };
        let queued = ThroughputConfig {
            admission: Some(AdmissionConfig {
                patience: SimDuration::from_secs(60),
                ..AdmissionConfig::default()
            }),
            ..base.clone()
        };
        let without = run_throughput(SystemKind::Vdbms, &base);
        let with = run_throughput(SystemKind::Vdbms, &queued);
        let window = |r: &ThroughputResult, from, to| {
            r.outstanding
                .window_mean(SimTime::from_secs(from), SimTime::from_secs(to))
                .expect("sampled window")
        };
        // Without patience the pile-up keeps growing through the horizon...
        let w1 = window(&without, 300, 450);
        let w2 = window(&without, 450, 601);
        assert!(w2 > w1 * 1.10, "expected monotonic growth, got {w1} -> {w2}");
        // ...with patience it levels off once the oldest stretched
        // sessions start getting cancelled.
        let p1 = window(&with, 300, 450);
        let p2 = window(&with, 450, 601);
        assert!((p2 - p1).abs() < p1 * 0.10, "expected a plateau, got {p1} -> {p2}");
        assert!(p2 < w2, "patience must cap the pile-up ({p2} vs {w2})");
        let q = with.queue.as_ref().expect("front end enabled");
        assert!(q.abandoned_streaming > 0, "stretched sessions must be abandoned");
    }
}
