//! # quasaq-workload — traffic generation and experiment scenarios
//!
//! Assembles the full systems under test and drives them with the paper's
//! workload:
//!
//! * [`admission`] — the queued admission front end: rejected queries
//!   back off, walk the degradation ladder, and abandon on patience.
//! * [`testbed`] — the three-server deployment (catalog, replication,
//!   metadata, QoS API sizing) and cost-model selection.
//! * [`traffic`] — the Poisson query generator ("inter-arrival time …
//!   exponentially distributed with an average of 1 second", uniform
//!   video access, uniform QoS parameters).
//! * [`throughput`] — the Fig 6 / Fig 7 driver over the fluid session
//!   engine (outstanding sessions, jobs per minute, cumulative rejects).
//! * [`fig5`] — the inter-frame-delay experiment driver over the
//!   frame-level engine (Fig 5, Table 2).
//! * [`parallel`] — the deterministic scenario-parallel runner: fan
//!   independent experiment runs across cores, collect by scenario index,
//!   bit-identical to serial execution.

pub mod admission;
pub mod fig5;
pub mod parallel;
pub mod testbed;
pub mod throughput;
pub mod traffic;

pub use admission::{
    brownout_action, AdmissionConfig, AdmissionQueue, BrownoutAction, Disposition, QueueMetrics,
    Waiting,
};
pub use fig5::{run_fig5, Contention, Fig5Config, Fig5System};
pub use parallel::{parallel_map, run_throughput_scenarios, worker_count, DomainPool};
pub use testbed::{CostKind, Testbed, TestbedConfig};
pub use throughput::{
    arrival_stream, build_core, run_throughput, run_throughput_on, AdaptationConfig,
    DegradationMetrics, FaultMetrics, SystemKind, ThroughputConfig, ThroughputResult,
};
pub use traffic::{
    generate_queries, qop_class, random_qop, random_qop_with, GeneratedQuery, QopClass, QopMix,
    TrafficConfig,
};
