//! The experiment traffic generator.
//!
//! "Instead of user inputs from a GUI-based client program, the queries
//! for the experiments are from a traffic generator. … Queries are
//! generated such that the access rate to each individual video is the
//! same and each QoS parameter (QuaSAQ only) is uniformly distributed in
//! its valid range. The inter-arrival time for queries is exponentially
//! distributed with an average of 1 second."

use quasaq_core::{QopColor, QopMotion, QopRequest, QopResolution, QopSecurity, UserProfile};
use quasaq_media::{QosRange, VideoId};
use quasaq_sim::{Rng, SimDuration, SimTime};

/// The distribution of requested QoP parameters.
///
/// The paper says each QoS parameter "is uniformly distributed in its
/// valid range", yet its Fig 6 stable-stage factor (~1.75×) implies a mix
/// much richer than uniform: a uniform mix hands QuaSAQ many low-tier
/// requests it can serve from 7–48 KB/s replicas, inflating the factor to
/// ~4× here (see EXPERIMENTS.md). `PaperSkewed` weights requests toward
/// the rich end to match the published factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QopMix {
    /// Uniform over each parameter's valid range (the paper's stated
    /// generator). Bit-identical draws to the legacy generator.
    #[default]
    Uniform,
    /// Weighted toward rich requests, calibrated so the Fig 6
    /// QuaSAQ-vs-QoS-API stable-stage factor lands near the paper's
    /// ~1.75×.
    PaperSkewed,
}

/// Traffic parameters.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Mean of the exponential inter-arrival distribution (paper: 1 s).
    pub mean_interarrival: SimDuration,
    /// Generate queries up to this time.
    pub horizon: SimTime,
    /// Number of videos to draw from (uniform access).
    pub num_videos: usize,
    /// Zipf skew over videos (0 = the paper's uniform access).
    pub video_skew: f64,
    /// Distribution of requested QoP parameters.
    pub qop_mix: QopMix,
    /// Queries per arrival instant. `1` is the paper's Poisson stream
    /// (bit-identical RNG consumption to the legacy generator); larger
    /// values model flash crowds — every arrival is a burst of
    /// simultaneous, independently drawn requests.
    pub burst: usize,
}

impl TrafficConfig {
    /// The paper's generator over `num_videos` videos up to `horizon`.
    pub fn paper(num_videos: usize, horizon: SimTime) -> Self {
        TrafficConfig {
            mean_interarrival: SimDuration::from_secs(1),
            horizon,
            num_videos,
            video_skew: 0.0,
            qop_mix: QopMix::Uniform,
            burst: 1,
        }
    }
}

/// Service classes (and the classifier) live in the sans-IO control
/// plane now — brownout shedding is a control-plane decision — and are
/// re-exported here so existing callers keep compiling.
pub use quasaq_service::{qop_class, QopClass};

/// One generated request.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Arrival time.
    pub at: SimTime,
    /// Requested video (uniform over the catalog).
    pub video: VideoId,
    /// The QoP the "user" asked for.
    pub qop: QopRequest,
    /// Its translation to an application-QoS range.
    pub qos: QosRange,
}

/// Draws a uniformly random QoP request (security stays `Open`, matching
/// the throughput experiments, which do not exercise encryption).
pub fn random_qop(rng: &mut Rng) -> QopRequest {
    let resolution = *rng.choose(&[
        QopResolution::Preview,
        QopResolution::VcdLike,
        QopResolution::TvLike,
        QopResolution::DvdLike,
    ]);
    let motion = *rng.choose(&[QopMotion::Economy, QopMotion::Standard, QopMotion::Smooth]);
    let color = *rng.choose(&[QopColor::Basic, QopColor::Rich, QopColor::True]);
    QopRequest { resolution, motion, color, security: QopSecurity::Open }
}

/// Draws a QoP request from the configured mix. `Uniform` delegates to
/// [`random_qop`] (same RNG consumption, so existing seeds reproduce);
/// `PaperSkewed` draws each parameter from a weighted table biased toward
/// rich requests.
pub fn random_qop_with(rng: &mut Rng, mix: QopMix) -> QopRequest {
    match mix {
        QopMix::Uniform => random_qop(rng),
        QopMix::PaperSkewed => {
            let r = rng.below(100);
            let resolution = match r {
                0 => QopResolution::Preview,
                1..=2 => QopResolution::VcdLike,
                3..=5 => QopResolution::TvLike,
                _ => QopResolution::DvdLike,
            };
            let m = rng.below(100);
            let motion = match m {
                0 => QopMotion::Economy,
                1..=4 => QopMotion::Standard,
                _ => QopMotion::Smooth,
            };
            let c = rng.below(100);
            let color = match c {
                0 => QopColor::Basic,
                1..=4 => QopColor::Rich,
                _ => QopColor::True,
            };
            QopRequest { resolution, motion, color, security: QopSecurity::Open }
        }
    }
}

/// Generates the full arrival sequence for one run.
pub fn generate_queries(seed: u64, cfg: &TrafficConfig) -> Vec<GeneratedQuery> {
    assert!(cfg.num_videos > 0, "need a catalog");
    let mut rng = Rng::new(seed);
    let profile = UserProfile::new("traffic");
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        let gap = SimDuration::from_secs_f64(rng.exp(cfg.mean_interarrival.as_secs_f64()));
        t += gap;
        if t > cfg.horizon {
            break;
        }
        // A burst of `burst` simultaneous requests per arrival instant;
        // with `burst == 1` the draw sequence is the legacy one exactly.
        for _ in 0..cfg.burst.max(1) {
            let video = if cfg.video_skew > 0.0 {
                VideoId(rng.zipf(cfg.num_videos, cfg.video_skew) as u32)
            } else {
                VideoId(rng.index(cfg.num_videos) as u32)
            };
            let qop = random_qop_with(&mut rng, cfg.qop_mix);
            let qos = profile.translate(&qop);
            out.push(GeneratedQuery { at: t, video, qop, qos });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrafficConfig {
        TrafficConfig::paper(15, SimTime::from_secs(1000))
    }

    #[test]
    fn arrivals_are_ordered_and_bounded() {
        let qs = generate_queries(1, &cfg());
        assert!(!qs.is_empty());
        for w in qs.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(qs.last().unwrap().at <= SimTime::from_secs(1000));
    }

    #[test]
    fn mean_interarrival_close_to_one_second() {
        let qs = generate_queries(2, &TrafficConfig::paper(15, SimTime::from_secs(20_000)));
        let n = qs.len() as f64;
        let span = qs.last().unwrap().at.as_secs_f64();
        let mean = span / n;
        assert!((mean - 1.0).abs() < 0.05, "mean inter-arrival {mean}");
    }

    #[test]
    fn video_access_is_uniform() {
        let qs = generate_queries(3, &TrafficConfig::paper(15, SimTime::from_secs(30_000)));
        let mut counts = [0u32; 15];
        for q in &qs {
            counts[q.video.0 as usize] += 1;
        }
        let mean = qs.len() as f64 / 15.0;
        for &c in &counts {
            assert!((c as f64 - mean).abs() < mean * 0.25, "counts {counts:?}");
        }
    }

    #[test]
    fn qos_parameters_span_their_ranges() {
        let qs = generate_queries(4, &cfg());
        let mut resolutions = std::collections::BTreeSet::new();
        let mut motions = std::collections::BTreeSet::new();
        for q in &qs {
            resolutions.insert(format!("{:?}", q.qop.resolution));
            motions.insert(format!("{:?}", q.qop.motion));
            assert!(q.qos.is_valid());
        }
        assert_eq!(resolutions.len(), 4);
        assert_eq!(motions.len(), 3);
    }

    #[test]
    fn zipf_skew_concentrates_access() {
        let mut cfg = cfg();
        cfg.video_skew = 1.2;
        let qs = generate_queries(5, &cfg);
        let mut counts = [0u32; 15];
        for q in &qs {
            counts[q.video.0 as usize] += 1;
        }
        assert!(counts[0] > counts[14] * 2, "counts {counts:?}");
    }

    #[test]
    fn uniform_mix_reproduces_legacy_draws() {
        // `QopMix::Uniform` must consume the RNG exactly like the legacy
        // generator so recorded experiment seeds stay valid.
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..256 {
            assert_eq!(random_qop_with(&mut a, QopMix::Uniform), random_qop(&mut b));
        }
    }

    #[test]
    fn skewed_mix_prefers_rich_requests() {
        let mut rng = Rng::new(11);
        let mut rich = 0u32;
        let mut preview = 0u32;
        const N: u32 = 4000;
        for _ in 0..N {
            let q = random_qop_with(&mut rng, QopMix::PaperSkewed);
            if q.resolution == QopResolution::DvdLike {
                rich += 1;
            }
            if q.resolution == QopResolution::Preview {
                preview += 1;
            }
        }
        // DvdLike is weighted 45%, Preview 5%; uniform would give both 25%.
        assert!(rich > N * 4 / 10, "rich draws {rich}/{N}");
        assert!(preview < N / 10, "preview draws {preview}/{N}");
    }

    #[test]
    fn bursts_share_an_arrival_instant() {
        let mut c = cfg();
        c.burst = 8;
        let qs = generate_queries(6, &c);
        assert_eq!(qs.len() % 8, 0);
        for chunk in qs.chunks(8) {
            assert!(chunk.iter().all(|q| q.at == chunk[0].at), "burst must be simultaneous");
        }
        // Independent draws inside a burst: videos are not all identical.
        assert!(qs.chunks(8).any(|c| c.iter().any(|q| q.video != c[0].video)));
        // Arrival instants themselves match the burst-free stream.
        let lone = generate_queries(6, &cfg());
        // Different RNG consumption shifts later gaps, but the first
        // instant (drawn before any per-query randomness) must agree.
        assert_eq!(qs[0].at, lone[0].at);
    }

    #[test]
    fn qop_class_follows_resolution() {
        let mut rng = Rng::new(13);
        for _ in 0..64 {
            let q = random_qop(&mut rng);
            let expect = match q.resolution {
                QopResolution::Preview => QopClass::Economy,
                QopResolution::VcdLike | QopResolution::TvLike => QopClass::Standard,
                QopResolution::DvdLike => QopClass::Premium,
            };
            assert_eq!(qop_class(&q), expect);
        }
        assert!(QopClass::Economy < QopClass::Standard);
        assert!(QopClass::Standard < QopClass::Premium);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_queries(9, &cfg());
        let b = generate_queries(9, &cfg());
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x.at == y.at && x.video == y.video));
    }
}
