//! The Fig 5 / Table 2 experiment: server-side inter-frame delays of one
//! monitored stream under low and high contention, on plain VDBMS versus
//! QuaSAQ.
//!
//! "Figure 5 shows the inter-frame delay of a representative streaming
//! session for a video with frame rate of 23.97 fps. The data is
//! collected on the server side … On the first row, streaming is done
//! without competition from other programs (low contention) while the
//! number of concurrent video streams are high (high contention) for
//! experiments on the second row."

use quasaq_media::{DeliveryCostModel, FrameRate, FrameTrace, GopPattern, TraceParams};
use quasaq_sim::{ServerId, SimDuration, SimTime};
use quasaq_stream::{
    CpuPolicy, DispatchConfig, FrameSchedule, NodeConfig, SessionConfig, SessionReport,
    StreamEngine, Transforms,
};

/// Which delivery stack streams the monitored video.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig5System {
    /// Plain VDBMS: time-sharing CPU, best-effort everything.
    Vdbms,
    /// QuaSAQ: DSRT CPU reservation + link reservation.
    Quasaq,
}

impl Fig5System {
    /// Label matching the paper's panels.
    pub fn label(self) -> &'static str {
        match self {
            Fig5System::Vdbms => "VDBMS",
            Fig5System::Quasaq => "VDBMS+QuaSAQ",
        }
    }
}

/// Contention level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contention {
    /// The monitored stream runs alone.
    Low,
    /// Many concurrent streams compete for the server.
    High,
}

impl Contention {
    /// Label matching the paper's panels.
    pub fn label(self) -> &'static str {
        match self {
            Contention::Low => "Low contention",
            Contention::High => "High contention",
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Competing streams under high contention (sized to push a
    /// 2.4 GHz-class server's CPU slightly past saturation, as in the
    /// paper).
    pub competing_streams: usize,
    /// Length of the monitored clip (must cover the ~1000 frames the
    /// paper plots).
    pub clip: SimDuration,
    /// Monitored/competing replica bitrate (T1 class).
    pub stream_rate_bps: u64,
    /// Server outbound capacity. The paper's 3200 KB/s link cannot carry
    /// ~27 T1 streams, so the high-contention experiment is CPU-bound
    /// with the link deliberately oversized; we keep a large link so the
    /// server-side (CPU) measurement matches the paper's setup.
    pub link_capacity_bps: u64,
    /// Seed for the traces.
    pub seed: u64,
    /// Delivery cost model.
    pub cost: DeliveryCostModel,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            competing_streams: 27,
            clip: SimDuration::from_secs(60),
            stream_rate_bps: 193_000,
            link_capacity_bps: 16_000_000,
            seed: 5,
            cost: DeliveryCostModel::default(),
        }
    }
}

fn schedule(cfg: &Fig5Config, seed: u64) -> FrameSchedule {
    let trace = FrameTrace::generate(
        seed,
        &TraceParams::with_bitrate(
            FrameRate::NTSC_FILM,
            cfg.clip,
            GopPattern::mpeg1_n15(),
            cfg.stream_rate_bps as f64,
        ),
    );
    FrameSchedule::build(&trace, &Transforms::none(), &cfg.cost, &DispatchConfig::default())
}

/// Runs one panel of Fig 5 and returns the monitored session's report
/// plus how many competing sessions were actually running.
pub fn run_fig5(
    system: Fig5System,
    contention: Contention,
    cfg: &Fig5Config,
) -> (SessionReport, usize) {
    let node = match system {
        Fig5System::Vdbms => NodeConfig::vdbms(cfg.link_capacity_bps),
        Fig5System::Quasaq => NodeConfig::qos(cfg.link_capacity_bps),
    };
    let mut engine = StreamEngine::new([(ServerId(0), node)]);
    // DSRT budgets pool over one GOP so decode-order bursts are not
    // throttled mid-burst (see PlanExecutor::session_config).
    let period = FrameRate::NTSC_FILM.frame_interval() * 15;

    let monitored_schedule = schedule(cfg, cfg.seed);
    let share = (monitored_schedule.mean_cpu_share() * cfg.cost.reservation_headroom).min(1.0);
    let link_rate = (monitored_schedule.delivered_rate_bps() * 1.25).ceil() as u64;

    let monitored = engine
        .add_session(
            SimTime::ZERO,
            SessionConfig {
                server: ServerId(0),
                schedule: monitored_schedule,
                cpu: match system {
                    Fig5System::Vdbms => CpuPolicy::BestEffort,
                    Fig5System::Quasaq => CpuPolicy::Reserved { share, period },
                },
                link_rate_bps: Some(link_rate),
            },
        )
        .expect("monitored session admits on an empty server");

    let mut competitors = 0;
    if contention == Contention::High {
        for i in 0..cfg.competing_streams {
            let s = schedule(cfg, cfg.seed ^ (0x1000 + i as u64));
            let cpu = match system {
                Fig5System::Vdbms => CpuPolicy::BestEffort,
                Fig5System::Quasaq => CpuPolicy::Reserved {
                    share: (s.mean_cpu_share() * cfg.cost.reservation_headroom).min(1.0),
                    period,
                },
            };
            let rate = (s.delivered_rate_bps() * 1.25).ceil() as u64;
            // Under QuaSAQ admission control caps the competitor count;
            // rejected sessions simply do not run (that is the system
            // working as designed).
            if engine
                .add_session(
                    SimTime::ZERO,
                    SessionConfig {
                        server: ServerId(0),
                        schedule: s,
                        cpu,
                        link_rate_bps: Some(rate),
                    },
                )
                .is_ok()
            {
                competitors += 1;
            }
        }
    }

    engine.run_until(SimTime::ZERO + cfg.clip + SimDuration::from_secs(30));
    (engine.report(monitored).clone(), competitors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> Fig5Config {
        Fig5Config { clip: SimDuration::from_secs(30), ..Fig5Config::default() }
    }

    #[test]
    fn low_contention_is_timely_on_both_systems() {
        for system in [Fig5System::Vdbms, Fig5System::Quasaq] {
            let (report, n) = run_fig5(system, Contention::Low, &quick_cfg());
            assert_eq!(n, 0);
            let stats = report.frame_delay_stats();
            assert!(
                (stats.mean() - 41.72).abs() < 1.5,
                "{}: mean {}",
                system.label(),
                stats.mean()
            );
            assert!(stats.std_dev() < 45.0, "{}: sd {}", system.label(), stats.std_dev());
        }
    }

    #[test]
    fn vdbms_degrades_under_high_contention() {
        let cfg = quick_cfg();
        let (low, _) = run_fig5(Fig5System::Vdbms, Contention::Low, &cfg);
        let (high, n) = run_fig5(Fig5System::Vdbms, Contention::High, &cfg);
        assert_eq!(n, cfg.competing_streams, "plain VDBMS admits everything");
        let low_sd = low.frame_delay_stats().std_dev();
        let high_sd = high.frame_delay_stats().std_dev();
        // Fig 5c: "the scale of the vertical axis … is one magnitude
        // higher"; variance explodes.
        assert!(high_sd > 2.5 * low_sd, "high {high_sd} vs low {low_sd}");
        // Mean inter-frame delay is also elevated (Table 2: 48.84 vs
        // 42.07).
        assert!(high.frame_delay_stats().mean() > low.frame_delay_stats().mean() + 2.0);
    }

    #[test]
    fn quasaq_holds_qos_under_high_contention() {
        let cfg = quick_cfg();
        let (low, _) = run_fig5(Fig5System::Quasaq, Contention::Low, &cfg);
        let (high, n) = run_fig5(Fig5System::Quasaq, Contention::High, &cfg);
        // Admission control caps the competitors below the config ask.
        assert!(n < cfg.competing_streams, "admitted {n}");
        assert!(n > 5);
        let low_stats = low.frame_delay_stats();
        let high_stats = high.frame_delay_stats();
        // Table 2: QuaSAQ's high-contention stats match its
        // low-contention stats.
        assert!((high_stats.mean() - low_stats.mean()).abs() < 2.0);
        assert!(high_stats.std_dev() < low_stats.std_dev() * 1.3 + 5.0);
    }

    #[test]
    fn gop_level_smoothing_matches_table2() {
        let (report, _) = run_fig5(Fig5System::Quasaq, Contention::Low, &quick_cfg());
        let gop = report.gop_delay_stats();
        assert!((gop.mean() - 625.8).abs() < 15.0, "gop mean {}", gop.mean());
        assert!(gop.std_dev() < report.frame_delay_stats().std_dev());
    }

    #[test]
    fn client_side_shows_similar_results() {
        // "Data collected on the client side show similar results [7]":
        // under QuaSAQ the delivery-instant statistics match the
        // server-side processing statistics.
        let (report, _) = run_fig5(Fig5System::Quasaq, Contention::High, &quick_cfg());
        let server = report.frame_delay_stats();
        let mut client = quasaq_sim::OnlineStats::new();
        for d in report.client_inter_frame_delays_ms() {
            client.push(d);
        }
        assert!((client.mean() - server.mean()).abs() < 3.0, "client mean {}", client.mean());
        assert!(
            client.std_dev() < server.std_dev() * 1.5 + 5.0,
            "client sd {} vs server {}",
            client.std_dev(),
            server.std_dev()
        );
    }
}
