//! The queued admission front end, re-exported from the sans-IO control
//! plane.
//!
//! The queue — backoff, degradation-ladder retries, patience, brownout
//! shedding — is a QoS *decision* component, so it lives in
//! [`quasaq_service::admission`] where the TCP shell can reach it without
//! pulling in the experiment drivers. This module keeps the historical
//! `quasaq_workload::admission` paths (and the crate-root re-exports)
//! compiling unchanged.

pub use quasaq_service::admission::*;
