//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the registry `criterion`
//! dev-dependency can never resolve. This crate implements the subset the
//! workspace's benches use — `Criterion::bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`, `configure_from_args`, and
//! `final_summary` — with a plain wall-clock measurement loop: a short
//! warm-up, then timed batches until a fixed budget elapses, then a printed
//! mean per-iteration time. There is no statistical analysis, outlier
//! rejection, or HTML report; the point is that `cargo bench` runs green
//! offline and still prints usable numbers.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

/// Mirror of `criterion::Criterion` (measurement configuration is fixed).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for CLI compatibility; all arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// No summary beyond the per-benchmark lines already printed.
    pub fn final_summary(self) {}

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        match bencher.measurement {
            Some((iters, elapsed)) => {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                println!("bench: {name:<32} {:>12}  ({iters} iters)", format_time(per_iter));
            }
            None => println!("bench: {name:<32} (no measurement — iter() never called)"),
        }
        self
    }
}

/// Mirror of `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    measurement: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.measurement = Some((iters.max(1), start.elapsed()));
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Mirror of `criterion_group!`: defines a function that runs each target
/// against a fresh default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_chains() {
        let mut c = Criterion::default().configure_from_args();
        c.bench_function("noop", |b| b.iter(|| 1 + 1))
            .bench_function("spin", |b| b.iter(|| (0..64u64).sum::<u64>()));
        c.final_summary();
    }

    #[test]
    fn format_time_picks_sensible_units() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(2.5e-3).ends_with(" ms"));
        assert!(format_time(2.5e-6).ends_with(" µs"));
        assert!(format_time(2.5e-9).ends_with(" ns"));
    }
}
