//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the registry `criterion`
//! dev-dependency can never resolve. This crate implements the subset the
//! workspace's benches use — `Criterion::bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`, `configure_from_args`, and
//! `final_summary` — with a plain wall-clock measurement loop: a short
//! warm-up, then individually timed iterations until a fixed budget
//! elapses, then a printed `mean ± std (min … max)` per-iteration summary.
//! The headline number is a *trimmed* mean — the slowest and fastest 5%
//! (at least one sample each side) are dropped before averaging, so a
//! single scheduler hiccup cannot skew the figure the way it would a raw
//! mean. There is no HTML report; the point is that `cargo bench` runs
//! green offline and still prints numbers with enough spread information
//! to judge run-to-run noise.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

/// Mirror of `criterion::Criterion` (measurement configuration is fixed).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for CLI compatibility; all arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// No summary beyond the per-benchmark lines already printed.
    pub fn final_summary(self) {}

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        match bencher.stats() {
            Some(s) => {
                println!(
                    "bench: {name:<32} {:>12} ± {} ({} … {}, {} iters)",
                    format_time(s.trimmed_mean),
                    format_time(s.std_dev),
                    format_time(s.min),
                    format_time(s.max),
                    s.iters,
                );
            }
            None => println!("bench: {name:<32} (no measurement — iter() never called)"),
        }
        self
    }
}

/// Per-iteration timing statistics of one measured benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of measured (post-warm-up) iterations.
    pub iters: u64,
    /// Mean seconds per iteration over every sample.
    pub mean: f64,
    /// Outlier-rejected mean: the slowest and fastest 5% of samples (at
    /// least one each side once three samples exist) are discarded before
    /// averaging. This is the headline number `bench_function` prints.
    pub trimmed_mean: f64,
    /// Population standard deviation in seconds.
    pub std_dev: f64,
    /// Fastest iteration in seconds.
    pub min: f64,
    /// Slowest iteration in seconds.
    pub max: f64,
}

/// Mirror of `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        self.samples.clear();
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET && (self.samples.len() as u64) < MAX_ITERS {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed().as_secs_f64());
        }
        if self.samples.is_empty() {
            // A single routine call ran past the whole budget: keep it as
            // the lone sample rather than reporting nothing.
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }

    /// Statistics over the measured iterations, `None` before `iter` ran.
    pub fn stats(&self) -> Option<SampleStats> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let var = self.samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(SampleStats {
            iters: self.samples.len() as u64,
            mean,
            trimmed_mean: trimmed_mean(&self.samples),
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

/// Mean of `samples` after dropping the smallest and largest 5% (rounded
/// down, but at least one sample per side). Fewer than three samples leave
/// nothing to trim, so the plain mean is returned; an empty slice yields
/// NaN, matching the raw-mean convention.
pub fn trimmed_mean(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 3 {
        return samples.iter().sum::<f64>() / n as f64;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timing samples"));
    let trim = (n / 20).max(1);
    let kept = &sorted[trim..n - trim];
    kept.iter().sum::<f64>() / kept.len() as f64
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Mirror of `criterion_group!`: defines a function that runs each target
/// against a fresh default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_chains() {
        let mut c = Criterion::default().configure_from_args();
        c.bench_function("noop", |b| b.iter(|| 1 + 1))
            .bench_function("spin", |b| b.iter(|| (0..64u64).sum::<u64>()));
        c.final_summary();
    }

    #[test]
    fn stats_summarize_per_iteration_samples() {
        let mut b = Bencher::default();
        assert!(b.stats().is_none());
        b.iter(|| (0..256u64).sum::<u64>());
        let s = b.stats().expect("measured");
        assert!(s.iters >= 1);
        assert!(s.min <= s.mean && s.mean <= s.max, "{s:?}");
        assert!(s.min <= s.trimmed_mean && s.trimmed_mean <= s.max, "{s:?}");
        assert!(s.std_dev >= 0.0 && s.std_dev.is_finite());
        assert!(s.mean > 0.0);
    }

    #[test]
    fn trimmed_mean_rejects_outliers() {
        // One stall of 100 s among honest 1–4 s samples: the raw mean is
        // dragged to 22, the trimmed mean pins at the middle three.
        let samples = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(trimmed_mean(&samples), 3.0);
        // Order-insensitive: sorting happens inside.
        assert_eq!(trimmed_mean(&[100.0, 4.0, 1.0, 3.0, 2.0]), 3.0);
        // A low outlier is rejected symmetrically.
        assert_eq!(trimmed_mean(&[-50.0, 2.0, 3.0, 4.0, 5.0]), 3.0);
        // Exactly three samples trim one from each side, keeping the median.
        assert_eq!(trimmed_mean(&[1.0, 2.0, 900.0]), 2.0);
        // Below three samples nothing can be trimmed.
        assert_eq!(trimmed_mean(&[5.0, 7.0]), 6.0);
        assert_eq!(trimmed_mean(&[5.0]), 5.0);
        // 5% rule: with 40 samples, two (40 / 20) drop per side.
        let mut forty: Vec<f64> = vec![10.0; 36];
        forty.extend([0.0, 0.0, 1_000.0, 1_000.0]);
        assert_eq!(trimmed_mean(&forty), 10.0);
    }

    #[test]
    fn stats_trimmed_mean_matches_free_function() {
        let b = Bencher { samples: vec![1.0, 2.0, 3.0, 4.0, 100.0] };
        let s = b.stats().expect("samples present");
        assert_eq!(s.trimmed_mean, 3.0);
        assert_eq!(s.mean, 22.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn format_time_picks_sensible_units() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(2.5e-3).ends_with(" ms"));
        assert!(format_time(2.5e-6).ends_with(" µs"));
        assert!(format_time(2.5e-9).ends_with(" ns"));
    }
}
