//! Distributed replication and load balancing.
//!
//! Shows the storage side of QuaSAQ: offline replication under full and
//! round-robin placement, the QoS profiles the sampler attaches to each
//! replica, how the LRB cost model spreads admitted sessions across the
//! three servers, and the online migration planner (the paper's deferred
//! "dynamic online replication and migration" requirement) reacting to a
//! skewed access pattern.
//!
//! Run with: `cargo run --release --example distributed_replication`

use quasaq::core::{PlanRequest, QopSecurity, UserProfile};
use quasaq::media::VideoId;
use quasaq::qosapi::{ResourceKey, ResourceKind};
use quasaq::sim::{Rng, ServerId};
use quasaq::store::{plan_migrations, AccessStats, Placement};
use quasaq::workload::{random_qop, CostKind, Testbed, TestbedConfig};

fn main() {
    // --- Placement strategies --------------------------------------------
    for placement in [Placement::Full, Placement::RoundRobin] {
        let testbed = Testbed::build(TestbedConfig { placement, ..TestbedConfig::default() });
        println!("placement {:?}:", placement);
        for (server, store) in &testbed.stores {
            println!(
                "  {server}: {} objects, {:.2} GB",
                store.object_count(),
                store.used_bytes() as f64 / 1e9
            );
        }
        let sample = testbed.engine.replicas(VideoId(0));
        println!("  video#0 replicas:");
        for rec in sample {
            println!(
                "    {} {} on {} — {} @ {} KB/s (profile: cpu {:.3}, net {:.0} KB/s)",
                rec.object.oid,
                rec.object.tier,
                rec.object.server,
                rec.object.spec,
                rec.object.rate_bps / 1000,
                rec.profile.cpu_share,
                rec.profile.net_bps / 1000.0
            );
        }
        println!();
    }

    // --- LRB load balancing ----------------------------------------------
    let testbed = Testbed::build(TestbedConfig::default());
    let mut manager = testbed.quality_manager(CostKind::Lrb);
    let mut rng = Rng::new(3);
    let profile = UserProfile::new("ops");
    let mut admitted = Vec::new();
    for i in 0..30 {
        let qop = random_qop(&mut rng);
        let request = PlanRequest {
            video: VideoId(i % 15),
            qos: profile.translate(&qop),
            security: QopSecurity::Open,
        };
        if let Ok(a) = manager.process(&testbed.engine, &request, &mut rng) {
            admitted.push(a);
        }
    }
    println!("after {} LRB admissions, per-server link fill:", admitted.len());
    for server in ServerId::first_n(3) {
        let fill =
            manager.api().fill(ResourceKey::new(server, ResourceKind::NetBandwidth)).unwrap_or(0.0);
        let cpu = manager.api().fill(ResourceKey::new(server, ResourceKind::Cpu)).unwrap_or(0.0);
        println!("  {server}: net {:5.1}%  cpu {:5.1}%", fill * 100.0, cpu * 100.0);
    }
    println!("LRB keeps the buckets level — 'prevent any single bucket from growing faster than the others'.\n");

    // --- Online migration (extension) -------------------------------------
    let testbed = Testbed::build(TestbedConfig {
        placement: Placement::RoundRobin,
        ..TestbedConfig::default()
    });
    let mut stats = AccessStats::new();
    // A hot video hammered through one server.
    for _ in 0..500 {
        stats.record(VideoId(2), ServerId(0));
    }
    for v in [0u32, 1, 3, 4] {
        for _ in 0..20 {
            stats.record(VideoId(v), ServerId(1));
        }
    }
    let migrations = plan_migrations(&testbed.engine, &stats, 100);
    println!("access-driven migration plan (hot threshold 100 accesses):");
    for m in &migrations {
        let rec = testbed.engine.record(m.oid).unwrap();
        println!("  copy {} ({} tier of {}) -> {}", m.oid, rec.object.tier, rec.object.video, m.to);
    }
    println!(
        "\nThe planner copies the hot video's most-demanded tier to the coldest\n\
         server, converging the replica layout to the access pattern."
    );
}
