//! Quickstart: one QoS-aware query, end to end.
//!
//! Parses a QoS-enhanced SQL query, resolves its content component
//! against the catalog, plans and admits QoS-constrained delivery with
//! the LRB cost model, then actually streams the video on the simulated
//! testbed and reports the QoS it achieved.
//!
//! Run with: `cargo run --release --example quickstart`

use quasaq::core::{PlanExecutor, PlanRequest, QopSecurity, QualityManager};
use quasaq::sim::{Rng, ServerId, SimTime};
use quasaq::stream::{NodeConfig, StreamEngine};
use quasaq::vdbms;
use quasaq::workload::{CostKind, Testbed, TestbedConfig};

fn main() {
    // The paper's deployment: 3 servers, 3200 KB/s each, 15 videos with
    // 3-4 replicas fully replicated.
    let testbed = Testbed::build(TestbedConfig::default());
    println!(
        "Testbed: {} servers, {} videos, {} physical objects\n",
        testbed.stores.len(),
        testbed.library.len(),
        testbed.engine.object_count()
    );

    // --- Step 1: the conventional query (VDBMS) --------------------------
    let sql = "SELECT * FROM videos \
               WITH QOS (resolution >= 320x240, resolution <= 352x288, \
                         color >= 12, framerate >= 20) \
               LIMIT 1";
    println!("SQL> {sql}");
    let query = vdbms::parse(sql).expect("valid query");
    let hits = vdbms::search(&testbed.engine, &query);
    let hit = hits.first().expect("catalog is non-empty");
    let meta = testbed.engine.video(hit.video).unwrap().clone();
    println!("content result: {} ({:?}, {})\n", meta.title, meta.id, meta.duration);

    // --- Step 2: QoS-aware planning (QuaSAQ) -----------------------------
    let request = PlanRequest {
        video: hit.video,
        qos: query.qos.clone().expect("query carries QoS"),
        security: QopSecurity::Open,
    };
    let mut manager: QualityManager = testbed.quality_manager(CostKind::Lrb);
    let mut rng = Rng::new(2024);
    let admitted =
        manager.process(&testbed.engine, &request, &mut rng).expect("idle testbed admits");
    let stats = manager.last_stats();
    println!(
        "plan space: {} generated, {} feasible, admitted on attempt {}",
        stats.generated, stats.feasible, stats.attempts
    );
    println!("chosen plan: {}", admitted.plan);
    println!(
        "LRB bucket fill after admission: {:.1}%\n",
        manager
            .api()
            .fill(quasaq::qosapi::ResourceKey::new(
                admitted.plan.target_server,
                quasaq::qosapi::ResourceKind::NetBandwidth,
            ))
            .unwrap_or(0.0)
            * 100.0
    );

    // --- Step 3: execution on the simulated testbed ----------------------
    let executor = PlanExecutor::default();
    let session_cfg = executor.session_config(&admitted, &meta);
    let mut engine = StreamEngine::new(
        ServerId::first_n(testbed.config.servers).map(|s| (s, NodeConfig::qos(3_200_000))),
    );
    let session = engine.add_session(SimTime::ZERO, session_cfg).expect("node admits");
    let done = engine.run_to_completion(SimTime::from_secs(20 * 60));
    assert!(done, "stream completes within its playback window");

    let report = engine.report(session);
    let f = report.frame_delay_stats();
    let g = report.gop_delay_stats();
    println!("streamed {} frames in {}", report.frames().len(), meta.duration);
    println!(
        "server-side inter-frame delay: mean {:.2} ms, s.d. {:.2} ms (ideal {:.2} ms)",
        f.mean(),
        f.std_dev(),
        1000.0 / admitted.plan.delivered.frame_rate.fps()
    );
    println!("inter-GOP delay: mean {:.2} ms, s.d. {:.2} ms", g.mean(), g.std_dev());
    println!("worst frame lateness: {}", report.max_lateness());

    manager.release(&admitted);
    println!("\nreservation released; bucket usage back to zero.");
}
