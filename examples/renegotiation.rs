//! Renegotiation and the second-chance path.
//!
//! The paper's two renegotiation scenarios: (1) "QoS requirements are
//! allowed to be modified during media playback", and (2) "when the
//! user-specified QoP is rejected by the admission control module due to
//! low resource availability … a number of admittable alternative plans
//! will be presented as a 'second chance'" — with the per-user weights
//! deciding which quality dimension degrades first.
//!
//! Run with: `cargo run --release --example renegotiation`

use quasaq::core::{PlanRequest, QopRequest, QopSecurity, QosWeights, SecondChance, UserProfile};
use quasaq::media::VideoId;
use quasaq::sim::Rng;
use quasaq::workload::{CostKind, Testbed, TestbedConfig};

fn main() {
    let testbed = Testbed::build(TestbedConfig::default());
    let mut manager = testbed.quality_manager(CostKind::Lrb);
    let mut rng = Rng::new(17);
    let profile = UserProfile::new("viewer");

    // --- Scenario 1: upgrade mid-playback ---------------------------------
    println!("--- scenario 1: mid-playback renegotiation ---");
    let low = PlanRequest {
        video: VideoId(4),
        qos: profile.translate(&QopRequest::organizational()),
        security: QopSecurity::Open,
    };
    let admitted = manager.process(&testbed.engine, &low, &mut rng).unwrap();
    println!("initial plan:      {}", admitted.plan);
    let high = PlanRequest {
        video: VideoId(4),
        qos: profile.translate(&QopRequest::diagnostic()),
        security: QopSecurity::Open,
    };
    let upgraded = manager.renegotiate(&testbed.engine, &admitted, &high, &mut rng).unwrap();
    println!("renegotiated plan: {}", upgraded.plan);
    println!(
        "bandwidth {:.0} -> {:.0} KB/s, one reservation held throughout\n",
        admitted.plan.delivered_bps / 1000.0,
        upgraded.plan.delivered_bps / 1000.0
    );
    manager.release(&upgraded);

    // --- Scenario 2: second chance under saturation ------------------------
    println!("--- scenario 2: second chance under saturation ---");
    // Fill the cluster with diagnostic-quality sessions until rejection.
    let mut held = Vec::new();
    loop {
        let req = PlanRequest {
            video: VideoId(held.len() as u32 % 15),
            qos: profile.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        match manager.process(&testbed.engine, &req, &mut rng) {
            Ok(a) => held.push(a),
            Err(_) => break,
        }
    }
    println!("cluster saturated after {} diagnostic sessions", held.len());

    // Two users with opposite weights ask for one more diagnostic session.
    let motion_lover = UserProfile::with_weights(
        "sports-fan",
        QosWeights { resolution: 0.5, frame_rate: 3.0, color: 1.0 },
    );
    let pixel_lover = UserProfile::with_weights(
        "radiologist",
        QosWeights { resolution: 3.0, frame_rate: 0.5, color: 1.0 },
    );
    for user in [&motion_lover, &pixel_lover] {
        let req = PlanRequest {
            video: VideoId(9),
            qos: user.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        match manager.process_with_second_chance(&testbed.engine, &req, user, &mut rng) {
            SecondChance::AsRequested(a) => {
                println!("{}: admitted as requested ({})", user.name, a.plan.delivered);
                manager.release(&a);
            }
            SecondChance::Degraded { admitted, option } => {
                println!(
                    "{}: degraded (option {}): delivered {} at {:.0} KB/s",
                    user.name,
                    option,
                    admitted.plan.delivered,
                    admitted.plan.delivered_bps / 1000.0
                );
                manager.release(&admitted);
            }
            SecondChance::Rejected(err) => {
                println!("{}: rejected outright ({err})", user.name);
            }
        }
    }
    println!(
        "\nEach user's weights decide the order of concessions: the sports fan\n\
         yields resolution immediately (option 0), while the radiologist only\n\
         reaches a resolution cut after its preferred frame-rate and color\n\
         concessions (options 0-1) fail to free enough resources."
    );

    for a in &held {
        manager.release(a);
    }
    println!("released {} background sessions; cluster idle again.", held.len());
}
