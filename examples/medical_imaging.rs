//! The paper's motivating scenario: a physician and a nurse request the
//! same clinical video with very different quality needs.
//!
//! "For a physician diagnosing a patient, the jitter-free playback of
//! very high frame rate and resolution video of the patient's test data
//! is critical; whereas a nurse accessing the same data for organization
//! purposes may not require the same high quality."
//!
//! The example shows how the same logical OID resolves to different
//! plans, resource footprints and (under confidentiality requirements)
//! encryption choices — and how many of each session type the cluster can
//! sustain.
//!
//! Run with: `cargo run --release --example medical_imaging`

use quasaq::core::{PlanRequest, QopRequest, UserProfile};
use quasaq::sim::Rng;
use quasaq::vdbms::{self, ContentPredicate, Query};
use quasaq::workload::{CostKind, Testbed, TestbedConfig};

fn main() {
    let testbed = Testbed::build(TestbedConfig::default());
    let mut rng = Rng::new(99);

    // Both users look for the same clinical footage by content.
    let query = Query::content(ContentPredicate::KeywordAny(vec![
        "surgery".into(),
        "radiology".into(),
        "diagnosis".into(),
        "patient".into(),
        "cardiology".into(),
    ]));
    let video = vdbms::resolve_one(&testbed.engine, &query)
        .expect("the generated catalog contains clinical footage");
    let meta = testbed.engine.video(video).unwrap();
    println!("clinical video: {} ({})\n", meta.title, meta.duration);

    let physician = UserProfile::new("dr-chen");
    let nurse = UserProfile::new("nurse-alvarez");

    let physician_qop = QopRequest::diagnostic();
    let nurse_qop = QopRequest::organizational();

    let mut manager = testbed.quality_manager(CostKind::Lrb);

    for (who, profile, qop) in
        [("physician", &physician, physician_qop), ("nurse", &nurse, nurse_qop)]
    {
        let qos = profile.translate(&qop);
        println!(
            "--- {who} ({:?} resolution, {:?} motion, {:?} security)",
            qop.resolution, qop.motion, qop.security
        );
        println!("    application QoS: {qos}");
        let request = PlanRequest { video, qos, security: qop.security };
        let admitted =
            manager.process(&testbed.engine, &request, &mut rng).expect("idle cluster admits both");
        println!("    plan: {}", admitted.plan);
        println!(
            "    delivered {} at {:.0} KB/s{}",
            admitted.plan.delivered,
            admitted.plan.delivered_bps / 1000.0,
            if admitted.plan.cipher.is_encrypting() {
                format!(" encrypted with {}", admitted.plan.cipher)
            } else {
                String::new()
            }
        );
        println!("    resource vector: {}\n", admitted.plan.resources);
        manager.release(&admitted);
    }

    // Capacity study: how many of each session class fits on the cluster?
    for (who, profile, qop) in
        [("physician", &physician, physician_qop), ("nurse", &nurse, nurse_qop)]
    {
        let mut m = testbed.quality_manager(CostKind::Lrb);
        let qos = profile.translate(&qop);
        let mut admitted = Vec::new();
        loop {
            let request = PlanRequest { video, qos: qos.clone(), security: qop.security };
            match m.process(&testbed.engine, &request, &mut rng) {
                Ok(a) => admitted.push(a),
                Err(_) => break,
            }
            if admitted.len() > 5000 {
                break;
            }
        }
        println!("cluster capacity for concurrent {who} sessions: {}", admitted.len());
    }
    println!(
        "\nThe diagnostic sessions reserve far more bandwidth and CPU (and AES\n\
         encryption), so far fewer fit — exactly the application-level\n\
         flexibility the paper argues a QoS-blind system cannot exploit."
    );
}
