#!/usr/bin/env bash
# Offline-safe CI gate: everything here runs without network access — the
# workspace's only dependencies are in-tree path crates (see Cargo.toml),
# so no registry fetch is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> determinism + timing artifact (quick mode; fig6/fig7/queued/availability suites)"
cargo run --release -p quasaq-bench --bin bench -- --quick

echo "==> sharded-scale + cached-admission + stochastic-link brownout smoke (3 servers; asserts bit-identity and nonzero brownout shedding)"
cargo run --release -p quasaq-bench --bin bench -- --smoke

echo "==> scenario gallery (every scenarios/*.toml: serial + sharded(2), bit-identical, golden match)"
cargo run --release -p quasaq-bench --bin bench -- --gallery --shards 2

echo "==> service-shell loopback smoke (TCP shell vs in-process driver decision identity, 1/2/4 threads)"
cargo run --release -p quasaq-bench --bin bench -- --load --quick

echo "CI green."
