//! Cross-crate property-based tests of the planner and Quality Manager
//! invariants.

use proptest::prelude::*;
use quasaq::core::{
    CostModel, GeneratorConfig, LrbModel, PlanGenerator, PlanRequest, QopSecurity, UserProfile,
};
use quasaq::media::{ColorDepth, FrameRate, QosRange, Resolution, VideoId};
use quasaq::sim::Rng;
use quasaq::workload::{CostKind, Testbed, TestbedConfig};

fn testbed() -> Testbed {
    Testbed::build(TestbedConfig::default())
}

/// An arbitrary (possibly strict, possibly loose) valid QoS range.
fn qos_range_strategy() -> impl Strategy<Value = QosRange> {
    (
        0u32..3,  // min resolution rung
        0u32..3,  // extra rungs of ceiling above the floor
        8u8..=24, // min color bits
        5u32..24, // min fps
        0u32..20, // extra fps of ceiling
    )
        .prop_map(|(floor, extra, color, min_fps, extra_fps)| {
            let rungs = [
                Resolution::QCIF,
                Resolution::QVGA,
                Resolution::CIF,
                Resolution::VGA,
                Resolution::FULL,
            ];
            let lo = rungs[floor as usize];
            let hi = rungs[(floor + 1 + extra).min(4) as usize];
            QosRange {
                min_resolution: lo,
                max_resolution: hi,
                min_color: ColorDepth::from_bits(color),
                min_frame_rate: FrameRate::from_fps(min_fps as f64),
                max_frame_rate: FrameRate::from_fps((min_fps + 6 + extra_fps) as f64),
                formats: None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: every plan the generator emits delivers quality inside
    /// the requested range, for arbitrary valid ranges and any video.
    #[test]
    fn generator_soundness(qos in qos_range_strategy(), video in 0u32..15) {
        let tb = testbed();
        let generator = PlanGenerator::new(GeneratorConfig::default());
        let request = PlanRequest { video: VideoId(video), qos, security: QopSecurity::Open };
        for plan in generator.generate(&tb.engine, &request) {
            prop_assert!(request.qos.accepts(&plan.delivered),
                "plan {} delivers {} outside {}", plan, plan.delivered, request.qos);
            prop_assert!(quasaq::core::satisfies_ordered_disjoint_sets(&plan));
        }
    }

    /// Completeness floor: whenever some stored replica directly satisfies
    /// the range, the generator proposes at least one plan.
    #[test]
    fn generator_completeness(qos in qos_range_strategy(), video in 0u32..15) {
        let tb = testbed();
        let satisfiable = tb
            .engine
            .replicas(VideoId(video))
            .iter()
            .any(|r| qos.accepts(&r.object.spec));
        let generator = PlanGenerator::new(GeneratorConfig::default());
        let request = PlanRequest { video: VideoId(video), qos, security: QopSecurity::Open };
        let plans = generator.generate(&tb.engine, &request);
        if satisfiable {
            prop_assert!(!plans.is_empty());
        }
    }

    /// LRB picks the minimum projected max-fill plan (its defining
    /// property, Eq. 1).
    #[test]
    fn lrb_picks_the_min_max_fill(qos in qos_range_strategy(), video in 0u32..15, seed in any::<u64>()) {
        let tb = testbed();
        let mut manager = tb.quality_manager(CostKind::Lrb);
        let mut rng = Rng::new(seed);
        // Preload some random sessions to create a non-trivial state.
        let profile = UserProfile::new("p");
        for i in 0..10 {
            let qop = quasaq::workload::random_qop(&mut rng);
            let req = PlanRequest {
                video: VideoId(i % 15),
                qos: profile.translate(&qop),
                security: QopSecurity::Open,
            };
            let _ = manager.process(&tb.engine, &req, &mut rng);
        }
        let generator = PlanGenerator::new(GeneratorConfig::default());
        let request = PlanRequest { video: VideoId(video), qos, security: QopSecurity::Open };
        let plans = generator.generate(&tb.engine, &request);
        prop_assume!(!plans.is_empty());
        let order = LrbModel.rank(&plans, manager.api(), &mut rng);
        let best = LrbModel.cost(&plans[order[0]], manager.api());
        for &i in &order {
            prop_assert!(LrbModel.cost(&plans[i], manager.api()) >= best - 1e-12);
        }
    }

    /// Admission never overflows a bucket, under any request mix.
    #[test]
    fn admission_never_overflows(seed in any::<u64>(), n in 1usize..120) {
        let tb = testbed();
        let mut manager = tb.quality_manager(CostKind::Random);
        let profile = UserProfile::new("p");
        let mut rng = Rng::new(seed);
        for i in 0..n {
            let qop = quasaq::workload::random_qop(&mut rng);
            let req = PlanRequest {
                video: VideoId((i % 15) as u32),
                qos: profile.translate(&qop),
                security: QopSecurity::Open,
            };
            let _ = manager.process(&tb.engine, &req, &mut rng);
            for key in manager.api().buckets().collect::<Vec<_>>() {
                prop_assert!(manager.api().fill(key).unwrap() <= 1.0 + 1e-9);
            }
        }
    }

    /// Degrade options always produce valid, weaker-or-equal ranges.
    #[test]
    fn degrade_options_weaken_monotonically(
        qos in qos_range_strategy(),
        wr in 0.1f64..5.0,
        wf in 0.1f64..5.0,
        wc in 0.1f64..5.0,
    ) {
        let profile = UserProfile::with_weights(
            "p",
            quasaq::core::QosWeights { resolution: wr, frame_rate: wf, color: wc },
        );
        for alt in profile.degrade_options(&qos) {
            prop_assert!(alt.is_valid());
            // Floors only move down.
            prop_assert!(qos.min_resolution.covers(alt.min_resolution));
            prop_assert!(alt.min_color <= qos.min_color);
            prop_assert!(alt.min_frame_rate <= qos.min_frame_rate);
            // Anything acceptable before stays acceptable after.
            // (Ceilings are untouched, floors only drop.)
            prop_assert_eq!(alt.max_resolution, qos.max_resolution);
        }
    }
}
