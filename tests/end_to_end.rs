//! Cross-crate integration tests: the full QuaSAQ pipeline from SQL text
//! to streamed frames, plus the paper's headline comparisons at reduced
//! scale.

use quasaq::core::{
    satisfies_ordered_disjoint_sets, PlanExecutor, PlanRequest, QopRequest, QopSecurity,
    SecondChance, UserProfile,
};
use quasaq::media::VideoId;
use quasaq::sim::{Rng, ServerId, SimDuration, SimTime};
use quasaq::stream::{NodeConfig, StreamEngine};
use quasaq::vdbms;
use quasaq::workload::{
    run_fig5, run_throughput, run_throughput_scenarios, Contention, CostKind, Fig5Config,
    Fig5System, QopMix, SystemKind, Testbed, TestbedConfig, ThroughputConfig,
};

fn testbed() -> Testbed {
    Testbed::build(TestbedConfig::default())
}

#[test]
fn sql_to_streamed_frames() {
    let tb = testbed();
    let query = vdbms::parse(
        "SELECT * FROM videos WITH QOS (resolution >= 320x240, resolution <= 352x288, \
         framerate >= 20) LIMIT 1",
    )
    .unwrap();
    let video = vdbms::resolve_one(&tb.engine, &query).unwrap();
    let meta = tb.engine.video(video).unwrap().clone();

    let request =
        PlanRequest { video, qos: query.qos.clone().unwrap(), security: QopSecurity::Open };
    let mut manager = tb.quality_manager(CostKind::Lrb);
    let mut rng = Rng::new(1);
    let admitted = manager.process(&tb.engine, &request, &mut rng).unwrap();
    assert!(satisfies_ordered_disjoint_sets(&admitted.plan));
    assert!(request.qos.accepts(&admitted.plan.delivered));

    let executor = PlanExecutor::default();
    let cfg = executor.session_config(&admitted, &meta);
    let mut engine =
        StreamEngine::new(ServerId::first_n(3).map(|s| (s, NodeConfig::qos(3_200_000))));
    let sid = engine.add_session(SimTime::ZERO, cfg).unwrap();
    assert!(engine.run_to_completion(SimTime::from_secs(1500)));
    let report = engine.report(sid);
    assert!(report.is_complete());
    // Delivered on time: no frame more than a GOP late.
    assert!(report.max_lateness() < SimDuration::from_millis(700));
    manager.release(&admitted);
}

#[test]
fn every_generated_plan_is_qos_valid() {
    let tb = testbed();
    let generator = quasaq::core::PlanGenerator::new(quasaq::core::GeneratorConfig::default());
    let profile = UserProfile::new("t");
    let mut rng = Rng::new(2);
    let mut checked = 0;
    for _ in 0..200 {
        let qop = quasaq::workload::random_qop(&mut rng);
        let request = PlanRequest {
            video: VideoId(rng.index(15) as u32),
            qos: profile.translate(&qop),
            security: qop.security,
        };
        for plan in generator.generate(&tb.engine, &request) {
            checked += 1;
            assert!(satisfies_ordered_disjoint_sets(&plan), "{plan}");
            assert!(
                request.qos.accepts(&plan.delivered),
                "plan delivers {} outside {}",
                plan.delivered,
                request.qos
            );
            assert!(!plan.resources.is_empty());
            assert!(plan.delivered_bps > 0.0);
        }
    }
    assert!(checked > 1000, "only {checked} plans checked");
}

#[test]
fn reservation_accounting_is_exact_over_random_churn() {
    let tb = testbed();
    let mut manager = tb.quality_manager(CostKind::Lrb);
    let profile = UserProfile::new("t");
    let mut rng = Rng::new(3);
    let mut held = Vec::new();
    for step in 0..300 {
        if rng.chance(0.6) || held.is_empty() {
            let qop = quasaq::workload::random_qop(&mut rng);
            let request = PlanRequest {
                video: VideoId((step % 15) as u32),
                qos: profile.translate(&qop),
                security: QopSecurity::Open,
            };
            if let Ok(a) = manager.process(&tb.engine, &request, &mut rng) {
                held.push(a);
            }
        } else {
            let i = rng.index(held.len());
            let a = held.swap_remove(i);
            manager.release(&a);
        }
        assert_eq!(manager.api().reservation_count(), held.len());
        // No bucket ever exceeds capacity.
        for key in manager.api().buckets().collect::<Vec<_>>() {
            let fill = manager.api().fill(key).unwrap();
            assert!(fill <= 1.0 + 1e-9, "{key} at {fill}");
        }
    }
    for a in held.drain(..) {
        manager.release(&a);
    }
    assert_eq!(manager.api().reservation_count(), 0);
    for key in manager.api().buckets().collect::<Vec<_>>() {
        assert!(manager.api().used(key).unwrap().abs() < 1e-6);
    }
}

#[test]
fn fig5_shape_holds_at_small_scale() {
    let cfg = Fig5Config { clip: SimDuration::from_secs(20), ..Fig5Config::default() };
    let (vdbms_low, _) = run_fig5(Fig5System::Vdbms, Contention::Low, &cfg);
    let (vdbms_high, _) = run_fig5(Fig5System::Vdbms, Contention::High, &cfg);
    let (quasaq_high, _) = run_fig5(Fig5System::Quasaq, Contention::High, &cfg);
    let low_sd = vdbms_low.frame_delay_stats().std_dev();
    let high_sd = vdbms_high.frame_delay_stats().std_dev();
    let quasaq_sd = quasaq_high.frame_delay_stats().std_dev();
    assert!(high_sd > 2.0 * low_sd, "VDBMS contention must explode variance");
    assert!(quasaq_sd < high_sd / 2.0, "QuaSAQ must shield the stream");
}

#[test]
fn throughput_ordering_matches_fig6_and_fig7() {
    let cfg = ThroughputConfig {
        testbed: TestbedConfig::default(),
        horizon: SimTime::from_secs(250),
        sample_step: SimDuration::from_secs(10),
        seed: 21,
        video_skew: 0.0,
        local_plans_only: false,
        admission: None,
        faults: None,
        arrival_period: None,
        domain_workers: 0,
        qop_mix: QopMix::Uniform,
        arrival_burst: 1,
        plan_cache: false,
        links: None,
        adaptation: None,
    };
    let h = cfg.horizon;
    // Four independent runs: fan them across cores via the scenario runner
    // (bit-identical to serial calls, collected in scenario order).
    let scenarios = vec![
        (SystemKind::Vdbms, cfg.clone()),
        (SystemKind::VdbmsQosApi, cfg.clone()),
        (SystemKind::Quasaq(CostKind::Lrb), cfg.clone()),
        (SystemKind::Quasaq(CostKind::Random), cfg),
    ];
    let mut runs = run_throughput_scenarios(&scenarios).into_iter();
    let (plain, qosapi, lrb, random) =
        (runs.next().unwrap(), runs.next().unwrap(), runs.next().unwrap(), runs.next().unwrap());

    // Fig 6a ordering: plain piles up the most sessions; QuaSAQ sustains
    // more than QoS-API.
    assert!(plain.stable_outstanding(h) > lrb.stable_outstanding(h));
    assert!(lrb.stable_outstanding(h) > qosapi.stable_outstanding(h));
    // Fig 7: LRB above Random, with fewer rejects.
    assert!(lrb.stable_outstanding(h) > random.stable_outstanding(h));
    assert!(lrb.rejected <= random.rejected);
    // Plain admits everything.
    assert_eq!(plain.rejected, 0);
}

#[test]
fn queued_front_end_reshapes_admissions_end_to_end() {
    // Same Fig 6 workload, behind the queued admission front end: rejected
    // queries back off and retry down the degradation ladder instead of
    // vanishing.
    let queued = ThroughputConfig {
        horizon: SimTime::from_secs(250),
        seed: 41,
        ..ThroughputConfig::queued()
    };
    let legacy = ThroughputConfig { admission: None, ..queued.clone() };
    let scenarios = vec![
        (SystemKind::Vdbms, queued.clone()),
        (SystemKind::VdbmsQosApi, queued.clone()),
        (SystemKind::Quasaq(CostKind::Lrb), queued),
        (SystemKind::Quasaq(CostKind::Lrb), legacy),
    ];
    let mut runs = run_throughput_scenarios(&scenarios).into_iter();
    let (plain, qosapi, lrb, lrb_legacy) =
        (runs.next().unwrap(), runs.next().unwrap(), runs.next().unwrap(), runs.next().unwrap());

    assert!(lrb_legacy.queue.is_none(), "legacy runs carry no queue metrics");
    for r in [&plain, &qosapi, &lrb] {
        let q = r.queue.as_ref().expect("front end was enabled");
        // Every query is accounted for exactly once.
        assert_eq!(r.admitted + r.rejected, r.queries);
        assert_eq!(
            r.rejected,
            q.overflow + q.hopeless + q.abandoned_waiting + q.pending_at_horizon
        );
        assert_eq!(q.wait.count(), r.admitted);
    }
    // Waiting out transient overload admits queries fire-and-forget drops.
    assert!(lrb.admitted >= lrb_legacy.admitted);
    let q = lrb.queue.as_ref().unwrap();
    assert!(q.retries > 0, "a saturated cluster must force retries");
    assert!(q.wait.mean() > 0.0, "retried queries wait in simulated time");
}

#[test]
fn second_chance_and_renegotiation_round_trip() {
    let tb = testbed();
    let mut manager = tb.quality_manager(CostKind::Lrb);
    let profile = UserProfile::new("t");
    let mut rng = Rng::new(5);

    // Saturate with diagnostic sessions.
    let mut held = Vec::new();
    loop {
        let request = PlanRequest {
            video: VideoId(held.len() as u32 % 15),
            qos: profile.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        match manager.process(&tb.engine, &request, &mut rng) {
            Ok(a) => held.push(a),
            Err(_) => break,
        }
        assert!(held.len() < 2000);
    }

    // A further diagnostic request degrades via second chance.
    let request = PlanRequest {
        video: VideoId(1),
        qos: profile.translate(&QopRequest::diagnostic()),
        security: QopSecurity::Open,
    };
    match manager.process_with_second_chance(&tb.engine, &request, &profile, &mut rng) {
        SecondChance::Degraded { admitted, .. } => {
            // A degraded session can later renegotiate upward once space
            // frees.
            for a in held.drain(..) {
                manager.release(&a);
            }
            let upgraded = manager
                .renegotiate(&tb.engine, &admitted, &request, &mut rng)
                .expect("renegotiation succeeds on an empty cluster");
            assert!(upgraded.plan.delivered_bps >= admitted.plan.delivered_bps);
            manager.release(&upgraded);
        }
        SecondChance::AsRequested(a) => {
            // Possible if saturation left just enough headroom; still release.
            manager.release(&a);
        }
        SecondChance::Rejected(e) => panic!("expected a second chance, got {e}"),
    }
    assert_eq!(manager.api().reservation_count(), 0);
}

#[test]
fn migration_extension_improves_skewed_throughput() {
    use quasaq::store::{plan_migrations, Placement, QosSampler, ReplicationPlanner};
    use quasaq::workload::run_throughput_on;
    let cfg = ThroughputConfig {
        testbed: TestbedConfig { placement: Placement::RoundRobin, ..TestbedConfig::default() },
        horizon: SimTime::from_secs(400),
        sample_step: SimDuration::from_secs(10),
        seed: 31,
        video_skew: 1.2,
        local_plans_only: true,
        admission: None,
        faults: None,
        arrival_period: None,
        domain_workers: 0,
        qop_mix: QopMix::Uniform,
        arrival_burst: 1,
        plan_cache: false,
        links: None,
        adaptation: None,
    };
    let mut tb = Testbed::build(cfg.testbed.clone());
    let before = run_throughput_on(&tb, SystemKind::Quasaq(CostKind::Lrb), &cfg);
    let migrations = plan_migrations(&tb.engine, &before.access, 20);
    assert!(!migrations.is_empty(), "skewed access must trigger migrations");
    let mut planner =
        ReplicationPlanner::new(QosSampler { cost: cfg.testbed.cost }, Placement::RoundRobin);
    let applied = {
        let Testbed { stores, engine, .. } = &mut tb;
        planner.apply_migrations(&migrations, stores, engine).unwrap()
    };
    assert!(applied > 0);
    let after = run_throughput_on(&tb, SystemKind::Quasaq(CostKind::Lrb), &cfg);
    // Migration decisions are heuristic: at short horizons the benefit is
    // within noise, so assert the converged layout serves the workload at
    // least comparably (the 600 s bench run in `extensions.rs` shows the
    // positive effect).
    assert!(
        after.admitted as f64 >= before.admitted as f64 * 0.95,
        "converged layout regressed admissions ({} -> {})",
        before.admitted,
        after.admitted
    );
    // The hot videos gained replicas.
    let hot = before
        .access
        .video_total(quasaq::media::VideoId(0))
        .max(before.access.video_total(quasaq::media::VideoId(1)));
    assert!(hot > 20, "zipf skew should make low-id videos hot");
}

#[test]
fn utility_optimizer_trades_throughput_for_quality() {
    let cfg = ThroughputConfig {
        testbed: TestbedConfig::default(),
        horizon: SimTime::from_secs(400),
        sample_step: SimDuration::from_secs(10),
        seed: 33,
        video_skew: 0.0,
        local_plans_only: false,
        admission: None,
        faults: None,
        arrival_period: None,
        domain_workers: 0,
        qop_mix: QopMix::Uniform,
        arrival_burst: 1,
        plan_cache: false,
        links: None,
        adaptation: None,
    };
    let scenarios = vec![
        (SystemKind::Quasaq(CostKind::Lrb), cfg.clone()),
        (SystemKind::Quasaq(CostKind::Utility), cfg.clone()),
    ];
    let mut runs = run_throughput_scenarios(&scenarios).into_iter();
    let (lrb, utility) = (runs.next().unwrap(), runs.next().unwrap());
    let (lu, uu) = (lrb.mean_utility.unwrap(), utility.mean_utility.unwrap());
    assert!(uu > lu, "utility optimizer must deliver richer quality ({uu} vs {lu})");
    assert!(
        lrb.stable_outstanding(cfg.horizon) >= utility.stable_outstanding(cfg.horizon),
        "LRB must sustain at least as many sessions"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let cfg = ThroughputConfig {
            testbed: TestbedConfig::default(),
            horizon: SimTime::from_secs(120),
            sample_step: SimDuration::from_secs(10),
            seed: 77,
            video_skew: 0.0,
            local_plans_only: false,
            admission: None,
            faults: None,
            arrival_period: None,
            domain_workers: 0,
            qop_mix: QopMix::Uniform,
            arrival_burst: 1,
            plan_cache: false,
            links: None,
            adaptation: None,
        };
        let r = run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cfg);
        (r.admitted, r.rejected, r.completed, r.outstanding.values().collect::<Vec<_>>())
    };
    assert_eq!(run(), run());
}

#[test]
fn metadata_cache_accelerates_remote_lookups() {
    let tb = Testbed::build(TestbedConfig {
        placement: quasaq::store::Placement::RoundRobin,
        ..TestbedConfig::default()
    });
    let mut engine = tb.engine;
    // Find a replica owned by server 1 and look it up from server 0 twice.
    let remote_oid = engine
        .replicas(VideoId(0))
        .iter()
        .find(|r| r.object.server == ServerId(1))
        .map(|r| r.object.oid)
        .expect("round-robin spreads replicas");
    let (_, miss1) = engine.lookup_from(ServerId(0), remote_oid).unwrap();
    let (_, miss2) = engine.lookup_from(ServerId(0), remote_oid).unwrap();
    assert!(miss1);
    assert!(!miss2);
}
