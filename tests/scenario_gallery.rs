//! The golden gallery: every scenario under `scenarios/` runs at smoke
//! scale and must render byte-identically to its committed golden, both
//! serially and sharded. The gallery doubles as the system-level
//! regression suite — any change to traffic generation, admission,
//! streaming, fault/link injection, or adaptation shows up as a
//! fingerprint diff here before it reaches a figure.
//!
//! Regenerating after an intentional behaviour change:
//!
//! ```text
//! QUASAQ_BLESS=1 cargo test --test scenario_gallery
//! ```
//!
//! then review the `scenarios/golden/*.golden` diff like any other code.

use quasaq::scenario::{run_file, ExecMode};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn gallery() -> Vec<PathBuf> {
    let dir = repo_root().join("scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    assert!(files.len() >= 6, "the gallery must keep at least 6 scenarios, found {}", files.len());
    files
}

fn golden_path(scenario: &Path) -> PathBuf {
    let stem = scenario.file_stem().expect("toml files have stems");
    repo_root().join("scenarios").join("golden").join(stem).with_extension("golden")
}

fn blessing() -> bool {
    std::env::var_os("QUASAQ_BLESS").is_some_and(|v| v == "1")
}

/// Serial execution must match the committed golden byte-for-byte.
#[test]
fn gallery_matches_goldens() {
    let mut stale = Vec::new();
    for scenario in gallery() {
        let name = scenario.file_name().unwrap().to_string_lossy().into_owned();
        let report =
            run_file(&scenario, ExecMode::Serial).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rendered = report.render();
        let golden = golden_path(&scenario);
        if blessing() {
            std::fs::write(&golden, &rendered)
                .unwrap_or_else(|e| panic!("cannot bless {}: {e}", golden.display()));
            continue;
        }
        let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); run QUASAQ_BLESS=1 cargo test --test \
                 scenario_gallery to generate it",
                golden.display()
            )
        });
        if rendered != expected {
            stale.push(format!(
                "{name}: report drifted from {}\n--- expected\n{expected}--- got\n{rendered}",
                golden.display()
            ));
        }
    }
    assert!(
        stale.is_empty(),
        "{}\nIf the change is intentional, rebless with QUASAQ_BLESS=1.",
        stale.join("\n")
    );
}

/// Sharded execution (2 domain lanes, scenario-parallel systems) must
/// render byte-identically to serial — the determinism gate.
#[test]
fn gallery_is_shard_invariant() {
    for scenario in gallery() {
        let name = scenario.file_name().unwrap().to_string_lossy().into_owned();
        let serial =
            run_file(&scenario, ExecMode::Serial).unwrap_or_else(|e| panic!("{name}: {e}"));
        let sharded =
            run_file(&scenario, ExecMode::Sharded(2)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            serial.render(),
            sharded.render(),
            "{name}: serial and sharded(2) reports diverged"
        );
        assert_eq!(serial.fingerprint(), sharded.fingerprint(), "{name}");
    }
}

/// Every scenario must round-trip through the DSL's own serializer: the
/// canonical re-rendering parses back to the same document, so gallery
/// files cannot depend on syntax the serializer would lose.
#[test]
fn gallery_sources_round_trip() {
    use quasaq::scenario::toml;
    for scenario in gallery() {
        let name = scenario.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&scenario).unwrap();
        let parsed = toml::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let canonical = toml::to_string(&parsed);
        let reparsed =
            toml::parse(&canonical).unwrap_or_else(|e| panic!("{name} (canonical): {e}"));
        assert_eq!(parsed, reparsed, "{name}: serializer is not a parse fixed point");
    }
}
